"""Global transactions and their state machines.

The state names follow the paper's Figures 2, 4 and 6: a global
transaction is *running* while its actions execute, *inquiring* while
prepare/status messages are out, then *waiting to commit* (Figs 2/4) or
*waiting to abort* (Fig 6) until every local reached its valid final
state, and finally *committed* or *aborted*.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

from repro.mlt.actions import Operation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Kernel


class GlobalTxnState(enum.Enum):
    """Global transaction states (union over the three figures)."""

    RUNNING = "running"
    INQUIRE = "inquire"
    WAITING_TO_COMMIT = "waiting_to_commit"
    WAITING_TO_ABORT = "waiting_to_abort"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class GlobalOutcome:
    """Result of one global transaction run."""

    gtxn_id: str
    committed: bool
    reason: str = ""
    submit_time: float = 0.0
    finish_time: float = 0.0
    reads: dict[str, Any] = field(default_factory=dict)
    sites: list[str] = field(default_factory=list)
    redo_executions: int = 0
    undo_executions: int = 0
    l0_retries: int = 0
    attempts: int = 1
    #: Aborted for a transient reason (lock conflict, victim selection)
    #: rather than by intent or transaction logic; the GTM may retry.
    retriable: bool = False
    #: (site, kind) of each routed operation, for the invariant audits.
    routed_ops: list[tuple[str, str]] = field(default_factory=list)

    @property
    def response_time(self) -> float:
        return self.finish_time - self.submit_time


class GlobalTransaction:
    """One global transaction under GTM control."""

    def __init__(
        self,
        kernel: "Kernel",
        gtxn_id: str,
        operations: list[Operation],
        origin: str = "central",
    ):
        self._kernel = kernel
        self.gtxn_id = gtxn_id
        self.operations = list(operations)
        self.origin = origin  # coordinating node (a pool shard, usually "central")
        self.state = GlobalTxnState.RUNNING
        self.submit_time = kernel.now
        self.decision: Optional[str] = None  # "commit" | "abort"
        self._trace()

    def set_state(self, state: GlobalTxnState, **details: Any) -> None:
        """Transition and trace (figure-conformance tests read these)."""
        self.state = state
        self._trace(**details)

    def set_decision(self, decision: str, **details: Any) -> None:
        """Record the global commit/abort decision at decision time."""
        self.decision = decision
        trace = self._kernel.trace
        if trace.enabled:
            trace.emit(
                "gtxn_decision", self.origin, self.gtxn_id, decision=decision, **details
            )

    def _trace(self, **details: Any) -> None:
        trace = self._kernel.trace
        if trace.enabled:
            trace.emit(
                "gtxn_state", self.origin, self.gtxn_id, state=self.state.value, **details
            )

    def sites(self) -> list[str]:
        """Sites touched, in first-use order (set by routing)."""
        seen: dict[str, None] = {}
        for operation in self.operations:
            if operation.site is not None:
                seen.setdefault(operation.site, None)
        return list(seen)

    def partitions(self) -> set[int]:
        """Data-plane partitions touched (empty outside placements).

        The rejoin drain consults this: a partition must quiesce before
        a returning replica is resynchronised.
        """
        return {
            operation.partition
            for operation in self.operations
            if operation.partition is not None
        }

    def __repr__(self) -> str:
        return f"<GlobalTransaction {self.gtxn_id} {self.state.value}>"
