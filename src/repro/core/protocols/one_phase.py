"""Logless one-phase commit -- the "To Vote Before Decide" style.

The classic objection to 1PC is that the coordinator cannot know the
participants' votes without a voting round.  The answer here (after
"To Vote Before Decide", PAPERS.md) is that the vote already exists
*during execution*: a participant that executed its last operation
successfully has, by that fact, voted yes.  The vote is therefore
piggybacked on the reply of the site's **last operation** -- a message
that flows anyway -- and the coordinator decides the moment execution
finishes, with **no extra voting round and no prepare force** at the
participants (the "logless" half: participants write no ready record;
the only durable vote is the coordinator's replicated decision).

Cost per participant with *n* sites: ``2n`` protocol messages (decide
+ finished; the votes ride on data messages) and **one** log force
(the local commit record) -- against 2PC's ``4n`` messages and two
forces, and commit-after's ``4n`` messages and one force.

What the protocol gives up is the ready state: between the piggybacked
vote and the arrival of the decision the local transaction is still
*running*, so it can be aborted autonomously -- exactly the §3.2
erroneous-abort window.  The obligations are inherited from
commit-after: erroneously aborted locals are re-executed from the
redo-log until they commit, and the GTM holds read/write L1 locks
until every local committed so the repetition preserves the
serialization order.  In-doubt locals after a crash are resolved
through the replicated decision read path (the central decision log,
or the acceptor group under the Paxos coordinator mode): decision
present -> re-drive the commit, absent -> presumed abort.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.core.global_txn import GlobalTxnState
from repro.core.protocols.base import ExecutionFailure, ProtocolContext
from repro.core.protocols.commit_after import CommitAfter
from repro.errors import DeadlockDetected, LockTimeout


class OnePhaseCommit(CommitAfter):
    """Vote during execution; decide with no extra round."""

    name = "one_phase"
    requires_prepare = False

    #: Seeded mutant (``repro.check --mutant presume_commit``): treat a
    #: missing vote -- a site that died or aborted before its last
    #: operation answered -- as a yes, and never re-drive the lost
    #: subtransaction.  The checker must catch the lost effect.
    presume_commit = False

    def run(self, ctx: ProtocolContext) -> Generator[Any, Any, None]:
        gtxn = ctx.gtxn
        votes: dict[str, str] = {}
        try:
            yield from ctx.begin_subtransactions()
            votes = yield from ctx.execute_operations(collect_votes=True)
        except ExecutionFailure as exc:
            if not (self.presume_commit and exc.aborted):
                ctx.outcome.retriable = exc.aborted
                yield from self._abort_running(ctx, reason=str(exc))
                return
            # MUTANT: a dead local never voted, but we presume it said
            # yes and fall through to the decision below.
        except (DeadlockDetected, LockTimeout) as exc:
            ctx.outcome.retriable = True
            yield from self._abort_running(ctx, reason=f"L1 conflict: {exc}")
            return

        missing = [
            site for site in ctx.decomposition.sites if votes.get(site) != "ready"
        ]
        if missing and not self.presume_commit:
            # Can only happen against a site that answered the last
            # operation without stamping the vote -- a foreign or
            # downgraded communication manager.  Without the vote there
            # is no 1PC; abort (retriable: nothing was decided).
            ctx.outcome.retriable = True
            yield from self._abort_running(
                ctx, reason=f"no piggybacked vote from {missing}"
            )
            return

        # Redo must be possible from stable central state before any
        # decision is sent (the §3.2 obligation, unchanged from
        # commit-after).
        for site, operations in ctx.decomposition.by_site.items():
            ctx.redo_log.record(gtxn.gtxn_id, site, operations)

        if ctx.intends_abort:
            # All locals are still running: a plain abort suffices.
            yield from self._abort_running(ctx, reason="intended abort")
            ctx.redo_log.forget(gtxn.gtxn_id)
            return

        # The decision: no voting round happened and none is needed.
        gtxn.set_decision("commit")
        gtxn.set_state(GlobalTxnState.WAITING_TO_COMMIT)
        if self.presume_commit and missing:
            # MUTANT: decide once per site and declare victory whatever
            # comes back -- the lost subtransaction is never repeated.
            for site in ctx.decomposition.sites:
                yield from ctx.decide_commit(site)
            gtxn.set_state(GlobalTxnState.COMMITTED)
            ctx.outcome.committed = True
            ctx.redo_log.forget(gtxn.gtxn_id)
            return
        results = yield from ctx.parallel(
            {
                site: self._commit_site(ctx, site)
                for site in ctx.decomposition.sites
            }
        )
        for site, result in results.items():
            if isinstance(result, Exception):
                raise result
            ctx.outcome.redo_executions += result
        gtxn.set_state(GlobalTxnState.COMMITTED)
        ctx.outcome.committed = True
        ctx.redo_log.forget(gtxn.gtxn_id)
