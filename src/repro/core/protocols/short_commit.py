"""Short-Commit -- 2PC with early lock release at commit-phase start.

After "Performance of Short-Commit in Extreme Database Environment"
(PAPERS.md): the dominant cost of 2PC is not the messages but the lock
*hold* time -- every participant keeps its exclusive locks through the
vote round-trip, the decision force and the commit force.  Short-Commit
shrinks that window: the moment a participant enters the commit phase
(it forced its prepare record and voted yes), it

* **releases its read locks** -- the reads are over, nothing they
  protect can change the vote; and
* **downgrades its write locks** from exclusive to shared -- readers
  may proceed against the prepared (uncommitted) values, while writers
  stay blocked so a later abort can still restore the before-images
  atomically.

The price is the §3.3 hazard in miniature: a reader that consumed a
prepared value takes a *dirty read* if the global decision turns out
to be abort.  The guard is the undo path of the engine: a downgraded
transaction is marked *exposed*, readers of its exposed pages pick up
a commit dependency, and the abort rolls the before-images back under
the still-held shared locks and **cascade-aborts** every active
dependent reader (retriable), while a dependent reader's own commit
waits until its exposers resolved.  Writers never see exposed values
(the shared lock blocks them), so the rollback can never clobber a
committed concurrent effect.

Messages and forces are exactly 2PC's (``4n`` / 2 per site); the gain
shows up in the lock-hold columns of EXP-T5b/T6.
"""

from __future__ import annotations

from typing import Any

from repro.core.protocols.two_phase import TwoPhaseCommit


class ShortCommit(TwoPhaseCommit):
    """2PC releasing read locks / downgrading write locks at vote time."""

    name = "short_commit"
    requires_prepare = True

    #: Seeded mutant (``repro.check --mutant short_release_all``):
    #: release the write locks outright instead of downgrading them.
    #: A concurrent writer can then interleave with the prepared
    #: values, and the checker must catch the resulting committed
    #: non-serializable history.
    release_all_locks = False

    # The control flow is exactly 2PC's; only the vote request differs
    # (the participant short-releases before answering), so the whole
    # protocol is the prepare-payload hook below.

    def _prepare_payload(self) -> dict[str, Any]:
        return {
            "protocol": "short_commit",
            "short_release": "all" if self.release_all_locks else "downgrade",
        }
