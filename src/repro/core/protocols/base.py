"""Shared protocol machinery.

A protocol receives a :class:`ProtocolContext` per global transaction
and drives it to a :class:`~repro.core.global_txn.GlobalOutcome`.  The
context bundles the communication manager, the L1 lock table, the
redo/undo logs and retry/polling helpers shared by all protocols.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

from repro.errors import MessageTimeout, ProcessInterrupted
from repro.mlt.actions import Operation
from repro.mlt.conflicts import L1Mode
from repro.net.message import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.global_txn import GlobalOutcome, GlobalTransaction
    from repro.core.gtm import GlobalTransactionManager, GTMConfig
    from repro.core.redo import RedoLog
    from repro.core.undo import UndoLog
    from repro.integration.comm_central import CentralCommunicationManager
    from repro.integration.decompose import Decomposition
    from repro.mlt.locks import SemanticLockManager
    from repro.sim.kernel import Kernel


class ExecutionFailure(Exception):
    """A subtransaction could not execute an operation.

    ``aborted`` distinguishes a dead local transaction from a pure
    logic error (key not found, duplicate) inside a live one.
    """

    def __init__(self, site: str, reason: str, aborted: bool):
        super().__init__(f"{site}: {reason}")
        self.site = site
        self.reason = reason
        self.aborted = aborted


class ProtocolContext:
    """Everything one protocol run needs."""

    def __init__(
        self,
        gtm: "GlobalTransactionManager",
        gtxn: "GlobalTransaction",
        decomposition: "Decomposition",
        outcome: "GlobalOutcome",
        intends_abort: bool,
    ):
        self.gtm = gtm
        self.kernel: "Kernel" = gtm.kernel
        self.config: "GTMConfig" = gtm.config
        self.comm: "CentralCommunicationManager" = gtm.comm
        self.l1: Optional["SemanticLockManager"] = gtm.l1
        self.redo_log: "RedoLog" = gtm.redo_log
        self.undo_log: "UndoLog" = gtm.undo_log
        self.gtxn = gtxn
        self.decomposition = decomposition
        self.outcome = outcome
        self.intends_abort = intends_abort

    # -- L1 locking --------------------------------------------------------

    def acquire_l1(self, operation: Operation) -> Generator[Any, Any, None]:
        """Take the L1 lock for ``operation`` (no-op without an L1 table).

        May raise :class:`~repro.errors.DeadlockDetected` or
        :class:`~repro.errors.LockTimeout`; the GTM turns those into a
        global abort (and possibly a retry of the whole transaction).
        """
        if self.l1 is None:
            return
        mode: L1Mode = self.l1.table.mode_for(operation.kind)
        yield from self.l1.acquire(
            self.gtxn.gtxn_id, (operation.table, operation.key), mode
        )

    def release_l1(self) -> None:
        if self.l1 is not None:
            self.l1.release_all(self.gtxn.gtxn_id)

    # -- messaging helpers -----------------------------------------------------

    def request(
        self, site: str, kind: str, **payload: Any
    ) -> Generator[Any, Any, Message]:
        """Request/reply with the configured timeout."""
        reply = yield from self.comm.request(
            site,
            kind,
            gtxn_id=self.gtxn.gtxn_id,
            timeout=self.config.msg_timeout,
            **payload,
        )
        return reply

    def request_until_answered(
        self, site: str, kind: str, **payload: Any
    ) -> Generator[Any, Any, Message]:
        """Retry a request until the site answers (waits out crashes).

        The paper's protocols assume the central system can wait for a
        local system "to come up again"; this helper is that wait.
        """
        while True:
            try:
                reply = yield from self.request(site, kind, **payload)
                return reply
            except MessageTimeout:
                yield self.config.status_poll_interval

    def decide_commit(
        self, site: str, marker_key: Optional[str] = None
    ) -> Generator[Any, Any, str]:
        """Deliver the commit decision to one site.

        The decision record is hardened at the central decision log
        first.  With the group-decision pipeline enabled, concurrent
        transactions deciding for the same site share one round-trip
        and one forced write.  Returns ``committed`` / ``aborted`` /
        ``ambiguous`` (timeout -- the caller's retry machinery takes
        over, exactly as for an individual decide).
        """
        pipeline = self.gtm.pipeline
        if pipeline is not None:
            outcome = yield from pipeline.decide(
                site, self.gtxn.gtxn_id, "commit", marker_key
            )
            return outcome
        self.gtm.decision_log.harden([self.gtxn.gtxn_id], "commit")
        try:
            # A decide may queue behind an in-flight redo of the same
            # transaction at the site; allow for that.
            reply = yield from self.comm.request(
                site, "decide", gtxn_id=self.gtxn.gtxn_id,
                timeout=self.config.msg_timeout * 4,
                decision="commit", marker_key=marker_key,
            )
            return reply.payload["outcome"]
        except MessageTimeout:
            return "ambiguous"

    def commit_until_done(self, site: str) -> Generator[Any, Any, str]:
        """Deliver the commit decision, waiting out crashed sites."""
        while True:
            outcome = yield from self.decide_commit(site)
            if outcome != "ambiguous":
                return outcome
            yield self.config.status_poll_interval

    def parallel(
        self, jobs: dict[str, Generator[Any, Any, Any]]
    ) -> Generator[Any, Any, dict[str, Any]]:
        """Run per-site generators concurrently; map exceptions to values."""
        processes = {
            key: self.kernel.spawn(job, name=f"{self.gtxn.gtxn_id}:{key}")
            for key, job in jobs.items()
        }
        for process in processes.values():
            # Per-site helpers die with their coordinator: a crashed
            # coordinator's pool interrupts every tracked process, so
            # none of them keeps driving the protocol from beyond the
            # grave.
            self.gtm.track_service(process)
        results: dict[str, Any] = {}
        for key, process in processes.items():
            try:
                results[key] = yield process
            except ProcessInterrupted:
                # The *coordinator* was interrupted (crash): propagate --
                # swallowing it here would keep the dead coordinator's
                # protocol running.
                raise
            except Exception as exc:  # noqa: BLE001 - collected for the caller
                results[key] = exc
        return results

    # -- subtransaction execution (shared by 2PC / after / before-per-site) ----

    def begin_subtransactions(self) -> Generator[Any, Any, None]:
        """Open one local transaction per participating site."""
        replies = yield from self.parallel(
            {
                site: self.request(site, "begin_subtxn")
                for site in self.decomposition.sites
            }
        )
        for site, reply in replies.items():
            if isinstance(reply, Exception):
                raise ExecutionFailure(site, f"begin failed: {reply}", aborted=True)

    def execute_operations(
        self,
        record_undo: bool = False,
        on_site_finished: Optional[Callable[[str], None]] = None,
        finish_markers: Optional[dict[str, str]] = None,
        collect_votes: bool = False,
    ) -> Generator[Any, Any, dict[str, str]]:
        """Stream the global operations to their sites in global order.

        Acquires the L1 lock per operation before dispatch, collects
        read results and (optionally) undo records with before-images.
        ``on_site_finished`` fires when a site's last operation is done
        -- commit-before uses it to commit locals as early as possible.

        ``finish_markers`` (commit-before per-site piggybacking) maps
        sites to commit-marker keys; a site's *last* operation then
        carries the local-commit request and its reply carries the
        local outcome.  Returns the piggybacked outcomes per site
        (empty when no markers were given).

        ``collect_votes`` (one-phase commit) asks each site to stamp a
        commit vote on the reply of its *last* operation -- the vote
        rides on a message that flows anyway, so the decision needs no
        extra voting round.  The votes come back in the returned dict.
        """
        from repro.mlt.actions import inverse_of

        remaining = {
            site: len(ops) for site, ops in self.decomposition.by_site.items()
        }
        piggybacked: dict[str, str] = {}
        for operation in self.decomposition.ordered:
            yield from self.acquire_l1(operation)
            payload: dict[str, Any] = {"op": operation}
            if (
                finish_markers is not None
                and remaining[operation.site] == 1
                and operation.site in finish_markers
            ):
                payload["finish_marker"] = finish_markers[operation.site]
            if collect_votes and remaining[operation.site] == 1:
                payload["vote_request"] = True
            try:
                reply = yield from self.request(
                    operation.site, "execute_op", **payload
                )
            except MessageTimeout as exc:
                raise ExecutionFailure(
                    operation.site, f"timeout on {operation}", aborted=True
                ) from exc
            if reply.kind == "op_failed":
                raise ExecutionFailure(
                    operation.site,
                    reply.payload.get("reason", "unknown"),
                    aborted=reply.payload.get("aborted", True),
                )
            value = reply.payload.get("value")
            before = reply.payload.get("before")
            if operation.kind == "read":
                self.outcome.reads[f"{operation.table}[{operation.key!r}]"] = value
            if record_undo:
                self.undo_log.record(
                    self.gtxn.gtxn_id,
                    operation.site,
                    operation,
                    inverse_of(operation, before),
                )
            if "outcome" in reply.payload:
                piggybacked[operation.site] = reply.payload["outcome"]
            if "vote" in reply.payload:
                piggybacked[operation.site] = reply.payload["vote"]
            remaining[operation.site] -= 1
            if remaining[operation.site] == 0 and on_site_finished is not None:
                on_site_finished(operation.site)
        return piggybacked


class CommitProtocol(abc.ABC):
    """Interface of an atomic commitment protocol."""

    #: short name used in configs, traces and reports
    name: str = "abstract"
    #: True if the local TMs must expose a ready state
    requires_prepare: bool = False

    @abc.abstractmethod
    def run(self, ctx: ProtocolContext) -> Generator[Any, Any, None]:
        """Drive ``ctx.gtxn`` to a final state, filling ``ctx.outcome``."""


def make_protocol(name: str) -> CommitProtocol:
    """Protocol factory used by the GTM configuration.

    Resolves through the protocol registry
    (:data:`repro.core.protocols.PROTOCOL_REGISTRY`), the single source
    of truth for the protocol matrix.
    """
    from repro.core.protocols import protocol_info

    return protocol_info(name).load()()
