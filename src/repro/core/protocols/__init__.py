"""Atomic commitment protocols.

Classified, as in the paper, by when locals commit relative to the
global decision:

* :class:`~repro.core.protocols.two_phase.TwoPhaseCommit` -- decision
  *in the middle* of local commitment (Figure 3); needs modified TMs.
* :class:`~repro.core.protocols.commit_after.CommitAfter` -- locals
  commit *after* the decision (Figure 5); redo requirement.
* :class:`~repro.core.protocols.commit_before.CommitBefore` -- locals
  commit *before* the decision (Figure 7); undo requirement; combined
  with multi-level transactions it adds no overhead.
* :class:`~repro.core.protocols.three_phase.ThreePhaseCommit` --
  nonblocking extension ([Ske 81]), for completeness.
"""

from repro.core.protocols.base import CommitProtocol, ProtocolContext, make_protocol
from repro.core.protocols.commit_after import CommitAfter
from repro.core.protocols.commit_before import CommitBefore
from repro.core.protocols.two_phase import TwoPhaseCommit

__all__ = [
    "CommitAfter",
    "CommitBefore",
    "CommitProtocol",
    "ProtocolContext",
    "TwoPhaseCommit",
    "make_protocol",
]
