"""Atomic commitment protocols.

Classified, as in the paper, by when locals commit relative to the
global decision:

* :class:`~repro.core.protocols.two_phase.TwoPhaseCommit` -- decision
  *in the middle* of local commitment (Figure 3); needs modified TMs.
* :class:`~repro.core.protocols.commit_after.CommitAfter` -- locals
  commit *after* the decision (Figure 5); redo requirement.
* :class:`~repro.core.protocols.commit_before.CommitBefore` -- locals
  commit *before* the decision (Figure 7); undo requirement; combined
  with multi-level transactions it adds no overhead.
* :class:`~repro.core.protocols.three_phase.ThreePhaseCommit` --
  nonblocking extension ([Ske 81]), for completeness.
* :class:`~repro.core.protocols.one_phase.OnePhaseCommit` -- logless
  1PC in the "To Vote Before Decide" style: the vote rides on the last
  operation's reply, the decision needs no extra voting round.
* :class:`~repro.core.protocols.short_commit.ShortCommit` -- 2PC that
  releases read locks and downgrades write locks when a participant
  enters the commit phase (Short-Commit).

The **registry** below is the single source of truth for the protocol
matrix.  ``__main__.PROTOCOLS``, ``repro.check.CHECK_PROTOCOLS``,
``repro.faults.CHAOS_PROTOCOLS``, the benchmarks' preparable checks
and the GTM's L1-table selection are all derived from it, so adding a
protocol here automatically enrolls it in every harness -- and the
conformance-matrix test fails loudly if a consumer list drifts.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Optional

from repro.core.protocols.base import CommitProtocol, ProtocolContext, make_protocol
from repro.core.protocols.commit_after import CommitAfter
from repro.core.protocols.commit_before import CommitBefore
from repro.core.protocols.two_phase import TwoPhaseCommit


@dataclass(frozen=True)
class ProtocolInfo:
    """Everything the harnesses need to know about one protocol."""

    #: short name used in configs, CLIs, traces and reports
    name: str
    #: import path of the implementing class (loaded lazily)
    module: str
    class_name: str
    #: one-line classification for ``--help`` and docs
    summary: str
    #: True if the local TMs must expose a ready state
    requires_prepare: bool
    #: the protocol's natural decomposition granularity
    granularity: str = "per_site"
    #: L1 lock table the GTM must run (None | "read_write" | "semantic")
    l1_table: Optional[str] = None
    #: runs one L0 transaction per action under per_action granularity
    #: (the §3.3 family); the atomicity audit counts locals differently
    per_action: bool = False
    #: locals wait for the decision in the *running* state, so an
    #: autonomous abort between vote and decision must be redone (§3.2)
    redo_window: bool = False
    #: guarantees globally serializable committed histories (the saga
    #: baseline trades this away by design)
    serializable: bool = True
    #: swept by ``repro.check`` (CHECK_PROTOCOLS)
    in_check: bool = True
    #: swept by the chaos harness (CHAOS_PROTOCOLS)
    in_chaos: bool = True
    #: seeded protocol-specific bugs wired into ``repro.check --mutant``
    mutants: tuple[str, ...] = field(default=())

    def load(self) -> type[CommitProtocol]:
        return getattr(importlib.import_module(self.module), self.class_name)


#: Registry order is the paper-narrative order (it drives the demo and
#: ``__main__.PROTOCOLS``); derived matrices sort by name.
PROTOCOL_REGISTRY: dict[str, ProtocolInfo] = {
    info.name: info
    for info in (
        ProtocolInfo(
            "before", "repro.core.protocols.commit_before", "CommitBefore",
            "locals commit before the decision; inverse-transaction undo (§3.3)",
            requires_prepare=False, granularity="per_action",
            l1_table="semantic", per_action=True,
        ),
        ProtocolInfo(
            "after", "repro.core.protocols.commit_after", "CommitAfter",
            "decision first, locals commit afterwards; redo requirement (§3.2)",
            requires_prepare=False, l1_table="read_write", redo_window=True,
        ),
        ProtocolInfo(
            "2pc", "repro.core.protocols.two_phase", "TwoPhaseCommit",
            "classic two-phase commit; needs modified (preparable) TMs",
            requires_prepare=True,
        ),
        ProtocolInfo(
            "2pc-pa", "repro.core.protocols.presumed_abort", "PresumedAbort2PC",
            "presumed-abort 2PC with the read-only optimization",
            requires_prepare=True,
        ),
        ProtocolInfo(
            "3pc", "repro.core.protocols.three_phase", "ThreePhaseCommit",
            "nonblocking three-phase commit ([Ske 81])",
            requires_prepare=True,
        ),
        ProtocolInfo(
            "paxos", "repro.core.protocols.paxos_commit", "PaxosCommit",
            "replicated coordinator decisions (Paxos Commit)",
            requires_prepare=True, in_chaos=False,
        ),
        ProtocolInfo(
            "saga", "repro.baselines.sagas", "SagaCoordinator",
            "compensation-based baseline; no global serializability",
            requires_prepare=False, granularity="per_action",
            per_action=True, serializable=False,
            in_check=False, in_chaos=False,
        ),
        ProtocolInfo(
            "altruistic", "repro.baselines.altruistic", "AltruisticCommit",
            "altruistic locking baseline over per-action locals",
            requires_prepare=False, granularity="per_action",
            l1_table="read_write", per_action=True,
            in_check=False, in_chaos=False,
        ),
        ProtocolInfo(
            "one_phase", "repro.core.protocols.one_phase", "OnePhaseCommit",
            "logless 1PC: vote piggybacked on the last operation's reply",
            requires_prepare=False, l1_table="read_write", redo_window=True,
            mutants=("presume_commit",),
        ),
        ProtocolInfo(
            "short_commit", "repro.core.protocols.short_commit", "ShortCommit",
            "2PC releasing read locks / downgrading write locks at commit start",
            requires_prepare=True,
            mutants=("short_release_all",),
        ),
    )
}


def protocol_names() -> tuple[str, ...]:
    """All registered protocol names, in paper-narrative order."""
    return tuple(PROTOCOL_REGISTRY)


def protocol_info(name: str) -> ProtocolInfo:
    if name not in PROTOCOL_REGISTRY:
        raise ValueError(
            f"unknown protocol {name!r}; choose from {sorted(PROTOCOL_REGISTRY)}"
        )
    return PROTOCOL_REGISTRY[name]


def preparable_protocols() -> frozenset[str]:
    """Names whose sites must be built with a preparable (modified) TM."""
    return frozenset(
        info.name for info in PROTOCOL_REGISTRY.values() if info.requires_prepare
    )


def per_action_protocols() -> frozenset[str]:
    """The §3.3 family: one L0 transaction per action under per_action."""
    return frozenset(
        info.name for info in PROTOCOL_REGISTRY.values() if info.per_action
    )


def redo_window_protocols() -> frozenset[str]:
    """Protocols whose locals may erroneously abort between vote and decision."""
    return frozenset(
        info.name for info in PROTOCOL_REGISTRY.values() if info.redo_window
    )


def default_granularity(name: str) -> str:
    return protocol_info(name).granularity


def check_matrix() -> list[tuple[str, str]]:
    """(protocol, granularity) pairs the checker sweeps, sorted by name."""
    return sorted(
        (info.name, info.granularity)
        for info in PROTOCOL_REGISTRY.values()
        if info.in_check
    )


def chaos_matrix_protocols() -> list[tuple[str, str]]:
    """(protocol, granularity) pairs the chaos harness sweeps, sorted by name."""
    return sorted(
        (info.name, info.granularity)
        for info in PROTOCOL_REGISTRY.values()
        if info.in_chaos
    )


def protocol_mutants() -> dict[str, str]:
    """Mutant name -> the protocol it targets (for spec validation)."""
    return {
        mutant: info.name
        for info in PROTOCOL_REGISTRY.values()
        for mutant in info.mutants
    }


__all__ = [
    "CommitAfter",
    "CommitBefore",
    "CommitProtocol",
    "PROTOCOL_REGISTRY",
    "ProtocolContext",
    "ProtocolInfo",
    "TwoPhaseCommit",
    "chaos_matrix_protocols",
    "check_matrix",
    "default_granularity",
    "make_protocol",
    "per_action_protocols",
    "preparable_protocols",
    "protocol_info",
    "protocol_mutants",
    "protocol_names",
    "redo_window_protocols",
]
