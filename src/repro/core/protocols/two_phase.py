"""Two-phase commit (§3.1, Figure 2) -- the homogeneous-world baseline.

The decision falls *in the middle* of local commitment (Figure 3): the
locals first move to the ready state (forcing their logs), the
coordinator decides, and only then do they finish committing.  This
requires every participating transaction manager to expose ``prepare``
-- the very capability the paper's heterogeneous setting lacks, so this
protocol runs only against :class:`~repro.localdb.interface.PreparableTMInterface`
sites (a standard site answers the prepare call with an
:class:`~repro.errors.UnsupportedInterface` failure and the global
transaction aborts).
"""

from __future__ import annotations

from typing import Any, Generator

from repro.core.global_txn import GlobalTxnState
from repro.core.protocols.base import CommitProtocol, ExecutionFailure, ProtocolContext
from repro.errors import DeadlockDetected, LockTimeout


class TwoPhaseCommit(CommitProtocol):
    """Classic presumed-nothing 2PC over prepared local transactions."""

    name = "2pc"
    requires_prepare = True

    def run(self, ctx: ProtocolContext) -> Generator[Any, Any, None]:
        gtxn = ctx.gtxn
        try:
            yield from ctx.begin_subtransactions()
            yield from ctx.execute_operations()
        except ExecutionFailure as exc:
            ctx.outcome.retriable = exc.aborted
            yield from self._abort_running(ctx, reason=str(exc))
            return
        except (DeadlockDetected, LockTimeout) as exc:
            ctx.outcome.retriable = True
            yield from self._abort_running(ctx, reason=f"L1 conflict: {exc}")
            return

        if ctx.intends_abort:
            yield from self._abort_running(ctx, reason="intended abort")
            return

        # Phase 1: prepare (locals enter the ready state).
        gtxn.set_state(GlobalTxnState.INQUIRE)
        votes = yield from ctx.parallel(
            {
                site: ctx.request(site, "prepare", **self._prepare_payload())
                for site in ctx.decomposition.sites
            }
        )
        all_ready = all(
            not isinstance(reply, Exception) and reply.payload.get("vote") == "ready"
            for reply in votes.values()
        )

        # Decision -- made while locals sit in the ready state.
        decision = "commit" if all_ready else "abort"
        gtxn.set_decision(decision, votes={
            site: ("timeout" if isinstance(r, Exception) else r.payload.get("vote"))
            for site, r in votes.items()
        })

        # Phase 2: the decision reaches every participant, surviving
        # participant crashes (recovery reinstates in-doubt locals).
        # Commit decisions are hardened at the central decision log and
        # routed through the group-decision pipeline when enabled.
        gtxn.set_state(
            GlobalTxnState.WAITING_TO_COMMIT
            if decision == "commit"
            else GlobalTxnState.WAITING_TO_ABORT
        )
        if decision == "commit":
            yield from ctx.parallel(
                {
                    site: ctx.commit_until_done(site)
                    for site in ctx.decomposition.sites
                }
            )
        else:
            yield from ctx.parallel(
                {
                    site: ctx.request_until_answered(site, "decide", decision=decision)
                    for site in ctx.decomposition.sites
                }
            )
        if decision == "commit":
            gtxn.set_state(GlobalTxnState.COMMITTED)
            ctx.outcome.committed = True
        else:
            gtxn.set_state(GlobalTxnState.ABORTED)
            ctx.outcome.reason = "participant voted abort"
            ctx.outcome.retriable = True

    def _prepare_payload(self) -> dict[str, Any]:
        """Payload of the phase-1 vote request (subclass hook)."""
        return {"protocol": "2pc"}

    def _abort_running(self, ctx: ProtocolContext, reason: str) -> Generator[Any, Any, None]:
        """Abort while every local is still running -- the cheap path."""
        ctx.gtxn.set_decision("abort", cause=reason)
        ctx.gtxn.set_state(GlobalTxnState.WAITING_TO_ABORT)
        yield from ctx.parallel(
            {
                site: ctx.request_until_answered(site, "decide", decision="abort")
                for site in ctx.decomposition.sites
            }
        )
        ctx.gtxn.set_state(GlobalTxnState.ABORTED)
        ctx.outcome.reason = reason
