"""Three-phase commit ([Ske 81]) -- nonblocking extension baseline.

The paper's §5 notes a whole generation of 2PC derivatives, e.g.
nonblocking commit, at the price of more messages and log writes and of
*even deeper* changes to the local transaction managers.  This
implementation adds the pre-commit round between voting and the final
decision so the message/log complexity table (EXP-T5) can quantify that
price.  Like 2PC it runs only against preparable (modified) interfaces;
coordinator-failure takeover is out of scope here, as it is in the
paper.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.core.global_txn import GlobalTxnState
from repro.core.protocols.base import ExecutionFailure, ProtocolContext
from repro.core.protocols.two_phase import TwoPhaseCommit
from repro.errors import DeadlockDetected, LockTimeout


class ThreePhaseCommit(TwoPhaseCommit):
    """2PC with an acknowledged pre-commit round."""

    name = "3pc"
    requires_prepare = True

    def run(self, ctx: ProtocolContext) -> Generator[Any, Any, None]:
        gtxn = ctx.gtxn
        try:
            yield from ctx.begin_subtransactions()
            yield from ctx.execute_operations()
        except ExecutionFailure as exc:
            ctx.outcome.retriable = exc.aborted
            yield from self._abort_running(ctx, reason=str(exc))
            return
        except (DeadlockDetected, LockTimeout) as exc:
            ctx.outcome.retriable = True
            yield from self._abort_running(ctx, reason=f"L1 conflict: {exc}")
            return
        if ctx.intends_abort:
            yield from self._abort_running(ctx, reason="intended abort")
            return

        # Phase 1: can-commit?
        gtxn.set_state(GlobalTxnState.INQUIRE)
        votes = yield from ctx.parallel(
            {
                site: ctx.request(site, "prepare", protocol="2pc")
                for site in ctx.decomposition.sites
            }
        )
        all_ready = all(
            not isinstance(reply, Exception) and reply.payload.get("vote") == "ready"
            for reply in votes.values()
        )
        if not all_ready:
            gtxn.set_decision("abort")
            gtxn.set_state(GlobalTxnState.WAITING_TO_ABORT)
            yield from ctx.parallel(
                {
                    site: ctx.request_until_answered(site, "decide", decision="abort")
                    for site in ctx.decomposition.sites
                }
            )
            gtxn.set_state(GlobalTxnState.ABORTED)
            ctx.outcome.reason = "participant voted abort"
            ctx.outcome.retriable = True
            return

        # Phase 2: pre-commit -- the round that buys nonblocking-ness.
        yield from ctx.parallel(
            {
                site: ctx.request_until_answered(site, "pre_commit")
                for site in ctx.decomposition.sites
            }
        )
        gtxn.set_decision("commit")

        # Phase 3: do-commit (grouped/pipelined like the 2PC phase 2).
        gtxn.set_state(GlobalTxnState.WAITING_TO_COMMIT)
        yield from ctx.parallel(
            {
                site: ctx.commit_until_done(site)
                for site in ctx.decomposition.sites
            }
        )
        gtxn.set_state(GlobalTxnState.COMMITTED)
        ctx.outcome.committed = True
