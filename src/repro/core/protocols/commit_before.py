"""Local commitment *before* the global decision (§3.3/§4, Figures 6, 7).

The paper's contribution.  Local transactions commit independently, as
soon as they finish, releasing their L0 locks long before the global
transaction ends.  The GTM then *inquires* about final states; if the
outcomes are mixed (or the transaction intends to abort), committed
locals are undone by **inverse transactions** -- and a committed
inverse transaction means the local transaction is aborted (Figure 6's
hatched states).

Two granularities:

* ``per_site`` -- one local transaction per site, committed after the
  site's last action ([BST 90]/[WV 90] style).
* ``per_action`` -- the multi-level configuration of §4: every L1
  action runs as its own short L0 transaction, exactly Figure 8's
  two-level scheme lifted to the federation.  Combined with the
  semantic L1 conflict table this is the paper's recommended design:
  the undo-log and the L1 locks are the multi-level machinery itself,
  so atomic commitment adds no extra component.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.core.global_txn import GlobalTxnState
from repro.core.protocols.base import CommitProtocol, ExecutionFailure, ProtocolContext
from repro.errors import DeadlockDetected, LockTimeout, MessageTimeout
from repro.mlt.actions import Operation, inverse_of


class CommitBefore(CommitProtocol):
    """Locals commit first; global abort undoes via inverse transactions."""

    name = "before"
    requires_prepare = False

    def run(self, ctx: ProtocolContext) -> Generator[Any, Any, None]:
        if ctx.config.granularity == "per_action":
            yield from self._run_per_action(ctx)
        else:
            yield from self._run_per_site(ctx)

    # ------------------------------------------------------------------
    # Multi-level granularity: one L0 transaction per L1 action (§4)
    # ------------------------------------------------------------------

    def _run_per_action(self, ctx: ProtocolContext) -> Generator[Any, Any, None]:
        gtxn = ctx.gtxn
        executed: list[tuple[int, Operation, Any]] = []  # (index, op, undo record)
        failure: Optional[str] = None
        try:
            for index, operation in enumerate(ctx.decomposition.ordered):
                yield from ctx.acquire_l1(operation)
                marker_key = f"{gtxn.gtxn_id}:{index}"
                value, before, retries = yield from self._execute_action(
                    ctx, operation, marker_key
                )
                ctx.outcome.l0_retries += retries
                if operation.kind == "read":
                    ctx.outcome.reads[f"{operation.table}[{operation.key!r}]"] = value
                record = ctx.undo_log.record(
                    gtxn.gtxn_id, operation.site, operation, inverse_of(operation, before)
                )
                executed.append((index, operation, record))
        except ExecutionFailure as exc:
            failure = str(exc)
            ctx.outcome.retriable = exc.aborted
        except (DeadlockDetected, LockTimeout) as exc:
            failure = f"L1 conflict: {exc}"
            ctx.outcome.retriable = True

        # Decision point: every local effect is already committed.
        if failure is None and not ctx.intends_abort:
            gtxn.set_decision("commit")
            gtxn.set_state(GlobalTxnState.COMMITTED)
            ctx.outcome.committed = True
            ctx.undo_log.forget(gtxn.gtxn_id)
            return

        reason = failure or "intended abort"
        gtxn.set_decision("abort", cause=reason)
        gtxn.set_state(GlobalTxnState.WAITING_TO_ABORT)
        yield from self._undo_actions(ctx, executed)
        gtxn.set_state(GlobalTxnState.ABORTED)
        ctx.outcome.reason = reason
        ctx.undo_log.forget(gtxn.gtxn_id)

    def _execute_action(
        self, ctx: ProtocolContext, operation: Operation, marker_key: str
    ) -> Generator[Any, Any, tuple[Any, Any, int]]:
        """One L1 action as an L0 transaction, resolving crash ambiguity."""
        while True:
            try:
                reply = yield from ctx.request(
                    operation.site, "execute_l0", op=operation, marker_key=marker_key
                )
            except MessageTimeout:
                resolved = yield from self._resolve_action_ambiguity(
                    ctx, operation.site, marker_key
                )
                if resolved is not None:
                    return resolved
                continue  # not committed: safe to re-send
            if reply.kind == "l0_failed":
                raise ExecutionFailure(
                    operation.site,
                    reply.payload.get("reason", "unknown"),
                    aborted=reply.payload.get("aborted", True),
                )
            return (
                reply.payload.get("value"),
                reply.payload.get("before"),
                reply.payload.get("retries", 0),
            )

    def _resolve_action_ambiguity(
        self, ctx: ProtocolContext, site: str, marker_key: str
    ) -> Generator[Any, Any, Optional[tuple[Any, Any, int]]]:
        """After a timeout: did the action's L0 transaction commit?

        Returns the (value, before, retries) recovered from the durable
        marker when it did, ``None`` when it is safe to re-execute.
        """
        while True:
            yield ctx.config.status_poll_interval
            try:
                reply = yield from ctx.request(
                    site,
                    "status_query",
                    marker_key=marker_key,
                    durable=ctx.config.durable_status,
                )
            except MessageTimeout:
                continue  # site still down; wait for it to come up (§3.3)
            status = reply.payload["outcome"]
            if status == "committed":
                return (reply.payload.get("value"), reply.payload.get("before"), 0)
            if status in ("aborted", "unknown"):
                # "unknown" (volatile placement) forces a guess; the
                # re-execution may double-apply -- EXP-A2 shows it.
                return None

    def _undo_actions(
        self, ctx: ProtocolContext, executed: list[tuple[int, Operation, Any]]
    ) -> Generator[Any, Any, None]:
        """Run inverse actions in reverse order, each as an L0 txn."""
        for index, operation, record in reversed(executed):
            inverse = record.inverse
            if inverse is None:
                continue  # a read: nothing to undo
            marker_key = f"undo:{ctx.gtxn.gtxn_id}:{index}"
            ctx.kernel.trace.emit(
                "undo", "central", ctx.gtxn.gtxn_id, at=operation.site, op=str(inverse)
            )
            while True:
                try:
                    reply = yield from ctx.request(
                        operation.site,
                        "execute_l0",
                        op=inverse,
                        marker_key=marker_key,
                        undo=True,
                    )
                except MessageTimeout:
                    resolved = yield from self._resolve_action_ambiguity(
                        ctx, operation.site, marker_key
                    )
                    if resolved is not None:
                        break  # the inverse did commit
                    continue
                if reply.kind == "l0_done":
                    break
                yield ctx.config.status_poll_interval  # failed; retry (§3.3)
            ctx.undo_log.note_undo()
            ctx.outcome.undo_executions += 1

    # ------------------------------------------------------------------
    # Per-site granularity ([BST 90]/[WV 90] style)
    # ------------------------------------------------------------------

    def _run_per_site(self, ctx: ProtocolContext) -> Generator[Any, Any, None]:
        gtxn = ctx.gtxn
        finishers: dict[str, Any] = {}
        piggyback = ctx.config.piggyback_decisions
        finish_markers = (
            {site: f"{gtxn.gtxn_id}:{site}" for site in ctx.decomposition.sites}
            if piggyback
            else None
        )

        def finish_site(site: str) -> None:
            # The site's last action is done: commit its local
            # transaction right now, before any global decision.
            finishers[site] = ctx.kernel.spawn(
                ctx.request_until_answered(
                    site, "finish_subtxn", marker_key=f"{gtxn.gtxn_id}:{site}"
                ),
                name=f"{gtxn.gtxn_id}:finish:{site}",
            )
            # Dies with the coordinator (pool crash interrupts it).
            ctx.gtm.track_service(finishers[site])

        failure: Optional[str] = None
        known: dict[str, str] = {}
        try:
            yield from ctx.begin_subtransactions()
            # With piggybacking the local-commit request rides on the
            # site's last data message and the outcome rides back on
            # its reply; otherwise a dedicated finish_subtxn round is
            # fired as each site's last action completes.
            known = yield from ctx.execute_operations(
                record_undo=True,
                on_site_finished=None if piggyback else finish_site,
                finish_markers=finish_markers,
            )
        except ExecutionFailure as exc:
            failure = str(exc)
            ctx.outcome.retriable = exc.aborted
        except (DeadlockDetected, LockTimeout) as exc:
            failure = f"L1 conflict: {exc}"
            ctx.outcome.retriable = True

        # Inquire phase (Figure 6): ask every site for the final state
        # of its local transaction.  Sites whose outcome already rode
        # back on a data reply are final and need no inquiry.  Sites
        # with an unfinished (running) subtransaction resolve it
        # themselves: commit if they finished their actions, abort
        # reply otherwise.
        gtxn.set_state(GlobalTxnState.INQUIRE)
        for process in finishers.values():
            yield process  # local commits are in flight; let them land
        # A still-running subtransaction at inquiry time either lost its
        # finish message (commit it) or never finished because the
        # execution failed (abort it -- the cheap abort of an unfinished
        # local).
        resolve = "abort" if failure is not None else "commit"
        votes = yield from ctx.parallel(
            {
                site: ctx.request_until_answered(
                    site,
                    "prepare",
                    protocol="before",
                    marker_key=f"{gtxn.gtxn_id}:{site}",
                    resolve=resolve,
                )
                for site in ctx.decomposition.sites
                if site not in known
            }
        )
        outcomes = dict(known)
        for site, reply in votes.items():
            outcomes[site] = (
                reply.payload.get("vote")
                if not isinstance(reply, Exception)
                else "aborted"
            )
        all_committed = all(v == "committed" for v in outcomes.values())

        if failure is None and not ctx.intends_abort and all_committed:
            gtxn.set_decision("commit")
            gtxn.set_state(GlobalTxnState.COMMITTED)
            ctx.outcome.committed = True
            ctx.undo_log.forget(gtxn.gtxn_id)
            return

        reason = failure or ("intended abort" if ctx.intends_abort else "mixed outcomes")
        if reason == "mixed outcomes":
            ctx.outcome.retriable = True
        gtxn.set_decision("abort", cause=reason)
        gtxn.set_state(GlobalTxnState.WAITING_TO_ABORT)
        undo_jobs = {
            site: self._undo_site(ctx, site)
            for site, vote in outcomes.items()
            if vote == "committed"
        }
        results = yield from ctx.parallel(undo_jobs)
        for result in results.values():
            if isinstance(result, Exception):
                raise result
        gtxn.set_state(GlobalTxnState.ABORTED)
        ctx.outcome.reason = reason
        ctx.undo_log.forget(gtxn.gtxn_id)

    def _undo_site(self, ctx: ProtocolContext, site: str) -> Generator[Any, Any, None]:
        """Undo one committed subtransaction with an inverse transaction."""
        if ctx.config.optimize_undo:
            from repro.core.undo import optimize_inverses

            forward_order = list(
                reversed(ctx.undo_log.inverses_for(ctx.gtxn.gtxn_id, site))
            )
            inverse_ops = optimize_inverses(forward_order)
        else:
            inverse_ops = [
                record.inverse
                for record in ctx.undo_log.inverses_for(ctx.gtxn.gtxn_id, site)
            ]
        if not inverse_ops:
            return
        marker_key = f"undo:{ctx.gtxn.gtxn_id}:{site}"
        ctx.kernel.trace.emit("undo", "central", ctx.gtxn.gtxn_id, at=site)
        while True:
            try:
                reply = yield from ctx.request(
                    site, "undo_subtxn", inverse_ops=inverse_ops, marker_key=marker_key
                )
            except MessageTimeout:
                committed = yield from self._marker_committed(ctx, site, marker_key)
                if committed:
                    break
                continue
            if reply.payload.get("outcome") == "undone":
                break
            yield ctx.config.status_poll_interval
        ctx.undo_log.note_undo()
        ctx.outcome.undo_executions += 1

    def _marker_committed(
        self, ctx: ProtocolContext, site: str, marker_key: str
    ) -> Generator[Any, Any, bool]:
        while True:
            yield ctx.config.status_poll_interval
            try:
                reply = yield from ctx.request(
                    site,
                    "status_query",
                    marker_key=marker_key,
                    durable=ctx.config.durable_status,
                )
            except MessageTimeout:
                continue
            return reply.payload["outcome"] == "committed"
