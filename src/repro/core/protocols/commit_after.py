"""Local commitment *after* the global decision (§3.2, Figures 4 and 5).

No ready state is used: the communication manager answers the prepare
call as soon as the subtransaction finished its last action, while the
local transaction is still *running*.  Between that answer and the
arrival of the commit decision the local system may abort the
transaction autonomously (timeout, validation failure, system abort,
crash) -- an *erroneous* abort.  The protocol's two obligations
(paper's requirements):

* **Redo requirement** -- an erroneously aborted local is repeated,
  from the redo-log, until it commits.
* **Serializability requirement** -- the serialization order of the
  first execution must survive the repetition; the GTM enforces it by
  holding read/write L1 locks on every touched object until all locals
  finally committed, so no conflicting global transaction can slip
  between first execution and redo.

Ambiguity after a site crash ("did the commit land before the crash?")
is resolved through the commit-marker relation when the federation uses
in-database log placement; with volatile placement the protocol must
guess, reproducing the paper's two erroneous situations (EXP-A2).
"""

from __future__ import annotations

from typing import Any, Generator

from repro.core.global_txn import GlobalTxnState
from repro.core.protocols.base import CommitProtocol, ExecutionFailure, ProtocolContext
from repro.errors import DeadlockDetected, LockTimeout, MessageTimeout


class CommitAfter(CommitProtocol):
    """Decision first, local commits afterwards (with redo)."""

    name = "after"
    requires_prepare = False

    def run(self, ctx: ProtocolContext) -> Generator[Any, Any, None]:
        gtxn = ctx.gtxn
        try:
            yield from ctx.begin_subtransactions()
            yield from ctx.execute_operations()
        except ExecutionFailure as exc:
            ctx.outcome.retriable = exc.aborted
            yield from self._abort_running(ctx, reason=str(exc))
            return
        except (DeadlockDetected, LockTimeout) as exc:
            ctx.outcome.retriable = True
            yield from self._abort_running(ctx, reason=f"L1 conflict: {exc}")
            return

        # Register every subtransaction in the redo-log *before* any
        # decision can be sent: redo must be possible from stable
        # central state.
        for site, operations in ctx.decomposition.by_site.items():
            ctx.redo_log.record(gtxn.gtxn_id, site, operations)

        if ctx.intends_abort:
            # Intended aborts are the strong suit of this protocol: all
            # locals are still running, a plain abort suffices (§4.3).
            yield from self._abort_running(ctx, reason="intended abort")
            ctx.redo_log.forget(gtxn.gtxn_id)
            return

        # Inquire: communication managers answer from the running state.
        gtxn.set_state(GlobalTxnState.INQUIRE)
        votes = yield from ctx.parallel(
            {
                site: ctx.request(site, "prepare", protocol="after")
                for site in ctx.decomposition.sites
            }
        )
        all_ready = all(
            not isinstance(reply, Exception) and reply.payload.get("vote") == "ready"
            for reply in votes.values()
        )
        decision = "commit" if all_ready else "abort"
        gtxn.set_decision(decision)

        if decision == "abort":
            ctx.outcome.retriable = True
            yield from self._abort_running(ctx, reason="participant not ready")
            ctx.redo_log.forget(gtxn.gtxn_id)
            return

        # Commit phase: every local must reach its committed final
        # state, repeating erroneously aborted ones (Figure 4's double
        # arrow).  L1 locks stay held throughout.
        gtxn.set_state(GlobalTxnState.WAITING_TO_COMMIT)
        results = yield from ctx.parallel(
            {
                site: self._commit_site(ctx, site)
                for site in ctx.decomposition.sites
            }
        )
        for site, result in results.items():
            if isinstance(result, Exception):
                raise result
            ctx.outcome.redo_executions += result
        gtxn.set_state(GlobalTxnState.COMMITTED)
        ctx.outcome.committed = True
        ctx.redo_log.forget(gtxn.gtxn_id)

    # ------------------------------------------------------------------

    def _commit_site(self, ctx: ProtocolContext, site: str) -> Generator[Any, Any, int]:
        """Drive one site's subtransaction into the committed state.

        Returns the number of redo executions that were needed.
        """
        gtxn_id = ctx.gtxn.gtxn_id
        marker_key = gtxn_id
        redo_count = 0
        outcome = yield from self._try_decide(ctx, site, marker_key)
        while True:
            # Only actual redo executions count against the limit;
            # ambiguity polls while a site is down do not.
            if redo_count > ctx.config.max_redo_rounds:
                raise ExecutionFailure(site, "redo rounds exhausted", aborted=True)
            if outcome == "committed":
                ctx.redo_log.mark_committed(gtxn_id, site)
                return redo_count
            if outcome == "aborted":
                # Erroneous local abort after the ready answer: repeat
                # the subtransaction from the redo-log (§3.2).
                entry = ctx.redo_log.entry(gtxn_id, site)
                ctx.redo_log.note_redo(gtxn_id, site)
                redo_count += 1
                ctx.kernel.trace.emit("redo", "central", gtxn_id, at=site)
                outcome = yield from self._try_redo(ctx, site, entry.operations, marker_key)
                continue
            # Ambiguous (crash/lost message): wait, then ask for status.
            yield ctx.config.status_poll_interval
            outcome = yield from self._query_status(ctx, site, marker_key)
            if outcome == "running":
                # The decision message was lost; resend it.
                outcome = yield from self._try_decide(ctx, site, marker_key)

    def _try_decide(self, ctx: ProtocolContext, site: str, marker_key: str) -> Generator[Any, Any, str]:
        # Routes through the group-decision pipeline when the GTM has
        # one: concurrent transactions deciding for this site share one
        # decide round-trip and one forced decision-log write.
        outcome = yield from ctx.decide_commit(site, marker_key)
        return outcome

    def _try_redo(
        self, ctx: ProtocolContext, site: str, operations, marker_key: str
    ) -> Generator[Any, Any, str]:
        try:
            # Redo executions retry local conflicts internally and can
            # legitimately run long; an eager timeout would flood the
            # site with duplicate redo requests.
            reply = yield from ctx.comm.request(
                site, "redo_subtxn", gtxn_id=ctx.gtxn.gtxn_id,
                timeout=ctx.config.msg_timeout * 20,
                ops=operations, marker_key=marker_key,
            )
            return (
                "committed"
                if reply.payload.get("outcome") == "committed"
                else "aborted"
            )
        except MessageTimeout:
            return "ambiguous"

    def _query_status(self, ctx: ProtocolContext, site: str, marker_key: str) -> Generator[Any, Any, str]:
        try:
            reply = yield from ctx.request(
                site,
                "status_query",
                marker_key=marker_key,
                durable=ctx.config.durable_status,
            )
        except MessageTimeout:
            return "ambiguous"
        status = reply.payload["outcome"]
        if status == "unknown":
            # Volatile log placement after a crash: the protocol must
            # guess.  Assuming "aborted" triggers a redo -- possibly a
            # double execution if the commit did land (EXP-A2).
            return "aborted"
        return status

    def _abort_running(self, ctx: ProtocolContext, reason: str) -> Generator[Any, Any, None]:
        ctx.gtxn.set_decision("abort", cause=reason)
        ctx.gtxn.set_state(GlobalTxnState.WAITING_TO_ABORT)
        yield from ctx.parallel(
            {
                site: ctx.request_until_answered(site, "decide", decision="abort")
                for site in ctx.decomposition.sites
            }
        )
        ctx.gtxn.set_state(GlobalTxnState.ABORTED)
        ctx.outcome.reason = reason
