"""Paxos Commit (Gray & Lamport) -- non-blocking replicated 2PC.

Structurally this is two-phase commit with the coordinator's forced
decision-log write replaced by one consensus instance over the
``2F + 1`` acceptor group (see :mod:`repro.core.paxos`): the locals
prepare exactly as for 2PC, and the commit decision is *chosen* by a
ballot-0 Phase 2a/2b round batching all RM votes into one record --
no Phase 1a on the fast path, because ballot 0 is reserved for the
transaction's home coordinator.

What changes operationally:

* A commit decision is durable at ``F + 1`` acceptors, not in the
  central decision log -- ``DecisionLog.harden`` is never called, and
  recovery reads :meth:`AcceptorGroup.decision_for
  <repro.core.paxos.AcceptorGroup.decision_for>` instead.
* A coordinator crash mid-decision never blocks the transaction: a
  live peer's takeover timer finishes the ballot at a higher number
  (:meth:`PaxosLeader.resolve <repro.core.paxos.PaxosLeader.resolve>`),
  so in-doubt locals resolve without waiting for the crashed shard.
* Any RM voting no short-circuits to presumed abort with no acceptor
  round at all -- a chosen *commit* therefore implies every RM is
  durably prepared.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.core.global_txn import GlobalTxnState
from repro.core.paxos import PaxosLeader
from repro.core.protocols.base import CommitProtocol, ExecutionFailure, ProtocolContext
from repro.errors import DeadlockDetected, LockTimeout, MessageTimeout


class PaxosCommit(CommitProtocol):
    """2PC voting with a replicated, non-blocking decision."""

    name = "paxos"
    requires_prepare = True

    def run(self, ctx: ProtocolContext) -> Generator[Any, Any, None]:
        gtxn = ctx.gtxn
        try:
            yield from ctx.begin_subtransactions()
            yield from ctx.execute_operations()
        except ExecutionFailure as exc:
            ctx.outcome.retriable = exc.aborted
            yield from self._abort_running(ctx, reason=str(exc))
            return
        except (DeadlockDetected, LockTimeout) as exc:
            ctx.outcome.retriable = True
            yield from self._abort_running(ctx, reason=f"L1 conflict: {exc}")
            return

        if ctx.intends_abort:
            yield from self._abort_running(ctx, reason="intended abort")
            return

        # Phase 1: prepare -- identical to 2PC, the locals enter the
        # ready state with their own forced writes.
        gtxn.set_state(GlobalTxnState.INQUIRE)
        votes = yield from ctx.parallel(
            {
                site: ctx.request(site, "prepare", protocol="paxos")
                for site in ctx.decomposition.sites
            }
        )
        all_ready = all(
            not isinstance(reply, Exception) and reply.payload.get("vote") == "ready"
            for reply in votes.values()
        )
        vote_map = {
            site: ("timeout" if isinstance(r, Exception) else r.payload.get("vote"))
            for site, r in votes.items()
        }

        if all_ready:
            # The decision round: ballot-0 fast path over the acceptor
            # group.  The returned value is whatever consensus *chose*
            # -- normally commit, but a takeover that presumed this
            # leader dead may have chosen abort first; its choice wins.
            leader = PaxosLeader(
                ctx.gtm, gtxn.gtxn_id, sorted(ctx.decomposition.sites)
            )
            decision = yield from leader.commit_fast(vote_map)
        else:
            # Presumed abort: no acceptor round for a no vote.  A later
            # takeover reading an empty instance concludes abort too.
            decision = "abort"
        gtxn.set_decision(decision, votes=vote_map)

        gtxn.set_state(
            GlobalTxnState.WAITING_TO_COMMIT
            if decision == "commit"
            else GlobalTxnState.WAITING_TO_ABORT
        )
        if decision == "commit":
            yield from ctx.parallel(
                {
                    site: self._commit_site_until_done(ctx, site)
                    for site in ctx.decomposition.sites
                }
            )
            gtxn.set_state(GlobalTxnState.COMMITTED)
            ctx.outcome.committed = True
        else:
            yield from ctx.parallel(
                {
                    site: ctx.request_until_answered(site, "decide", decision="abort")
                    for site in ctx.decomposition.sites
                }
            )
            gtxn.set_state(GlobalTxnState.ABORTED)
            ctx.outcome.reason = (
                "participant voted abort" if not all_ready else "takeover chose abort"
            )
            ctx.outcome.retriable = True

    def _commit_site_until_done(
        self, ctx: ProtocolContext, site: str
    ) -> Generator[Any, Any, str]:
        """Deliver the chosen commit, waiting out crashed sites.

        Unlike :meth:`ProtocolContext.decide_commit` this never touches
        the central decision log -- the acceptor majority *is* the
        durable decision record.
        """
        while True:
            try:
                reply = yield from ctx.comm.request(
                    site, "decide", gtxn_id=ctx.gtxn.gtxn_id,
                    timeout=ctx.config.msg_timeout * 4,
                    decision="commit", marker_key=None,
                )
                return reply.payload["outcome"]
            except MessageTimeout:
                yield ctx.config.status_poll_interval

    def _abort_running(
        self, ctx: ProtocolContext, reason: str
    ) -> Generator[Any, Any, None]:
        """Abort while every local is still running -- the cheap path."""
        ctx.gtxn.set_decision("abort", cause=reason)
        ctx.gtxn.set_state(GlobalTxnState.WAITING_TO_ABORT)
        yield from ctx.parallel(
            {
                site: ctx.request_until_answered(site, "decide", decision="abort")
                for site in ctx.decomposition.sites
            }
        )
        ctx.gtxn.set_state(GlobalTxnState.ABORTED)
        ctx.outcome.reason = reason
