"""Presumed-abort 2PC with the read-only optimization ([ML 83]).

§5 points at "a complete generation of derived protocols [that] improve
two phase commit in many directions, e.g. ... the complexity in terms
of writes to the log [ML 83]".  This variant implements the two classic
improvements:

* **presumed abort** -- abort decisions are fire-and-forget: no
  acknowledgements are awaited and nothing about an abort needs to be
  hardened (an inquiring participant that finds no information presumes
  abort);
* **read-only optimization** -- a participant that executed only reads
  answers the vote request with ``readonly``, commits immediately
  (releasing its read locks) and is excluded from phase 2 entirely;
  a fully read-only transaction finishes after a single round.

Like plain 2PC it requires preparable (modified) local TMs -- and, like
the paper argues, is therefore *more* intrusive, not less: every
derived protocol deepens the dependency on changeable local systems.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.core.global_txn import GlobalTxnState
from repro.core.protocols.base import ExecutionFailure, ProtocolContext
from repro.core.protocols.two_phase import TwoPhaseCommit
from repro.errors import DeadlockDetected, LockTimeout


class PresumedAbort2PC(TwoPhaseCommit):
    """2PC with presumed abort and read-only participants."""

    name = "2pc-pa"
    requires_prepare = True

    def run(self, ctx: ProtocolContext) -> Generator[Any, Any, None]:
        gtxn = ctx.gtxn
        try:
            yield from ctx.begin_subtransactions()
            yield from ctx.execute_operations()
        except ExecutionFailure as exc:
            ctx.outcome.retriable = exc.aborted
            yield from self._abort_presumed(ctx, reason=str(exc))
            return
        except (DeadlockDetected, LockTimeout) as exc:
            ctx.outcome.retriable = True
            yield from self._abort_presumed(ctx, reason=f"L1 conflict: {exc}")
            return

        if ctx.intends_abort:
            yield from self._abort_presumed(ctx, reason="intended abort")
            return

        # Phase 1 with the read-only option.
        gtxn.set_state(GlobalTxnState.INQUIRE)
        votes = yield from ctx.parallel(
            {
                site: ctx.request(site, "prepare", protocol="2pc", allow_readonly=True)
                for site in ctx.decomposition.sites
            }
        )
        resolved = {
            site: (reply.payload.get("vote") if not isinstance(reply, Exception) else "abort")
            for site, reply in votes.items()
        }
        updaters = [site for site, vote in resolved.items() if vote == "ready"]
        all_ok = all(vote in ("ready", "readonly") for vote in resolved.values())
        decision = "commit" if all_ok else "abort"
        gtxn.set_decision(decision, votes=resolved)

        if decision == "abort":
            ctx.outcome.retriable = True
            yield from self._abort_presumed(
                ctx, reason="participant voted abort", sites=updaters
            )
            return

        # Phase 2 reaches only the updaters; read-only participants are
        # already done.  Commit decisions share round-trips and forced
        # writes through the group-decision pipeline when enabled.
        gtxn.set_state(GlobalTxnState.WAITING_TO_COMMIT)
        if updaters:
            yield from ctx.parallel(
                {site: ctx.commit_until_done(site) for site in updaters}
            )
        gtxn.set_state(GlobalTxnState.COMMITTED)
        ctx.outcome.committed = True

    def _abort_presumed(
        self, ctx: ProtocolContext, reason: str, sites=None
    ) -> Generator[Any, Any, None]:
        """Fire-and-forget aborts: presumed abort needs no acks."""
        ctx.gtxn.set_decision("abort", cause=reason)
        ctx.gtxn.set_state(GlobalTxnState.WAITING_TO_ABORT)
        targets = ctx.decomposition.sites if sites is None else sites
        for site in targets:
            ctx.comm.send(
                site, "decide", gtxn_id=ctx.gtxn.gtxn_id,
                decision="abort", noreply=True,
            )
        ctx.gtxn.set_state(GlobalTxnState.ABORTED)
        ctx.outcome.reason = reason
        return
        yield  # pragma: no cover - generator protocol
