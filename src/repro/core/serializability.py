"""Serialization-graph tools.

Builds conflict graphs from operation histories and checks
(conflict-)serializability, both per level and globally across sites.
Also implements the weaker *quasi-serializability* criterion of Du &
Elmagarmid, used to classify the histories the saga baseline produces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

import networkx as nx


@dataclass(frozen=True)
class HistoryOp:
    """One operation in a (committed-projection) history."""

    seq: int
    txn: str
    kind: str
    table: str
    key: Any


def rw_conflict(kind_a: str, kind_b: str) -> bool:
    """Classical read/write conflict: at least one side writes."""
    return not (kind_a == "read" and kind_b == "read")


@dataclass
class SerializabilityReport:
    """Result of a serializability check."""

    serializable: bool
    cycle: Optional[list[str]] = None
    serial_order: Optional[list[str]] = None
    edges: list[tuple[str, str]] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.serializable


def build_graph(
    ops: Iterable[HistoryOp],
    conflicts: Callable[[str, str], bool] = rw_conflict,
) -> nx.DiGraph:
    """Conflict graph: edge T1 -> T2 if an op of T1 precedes a
    conflicting op of T2 on the same object."""
    graph = nx.DiGraph()
    by_object: dict[tuple[str, Any], list[HistoryOp]] = {}
    for op in sorted(ops, key=lambda o: o.seq):
        graph.add_node(op.txn)
        by_object.setdefault((op.table, op.key), []).append(op)
    for object_ops in by_object.values():
        for i, earlier in enumerate(object_ops):
            for later in object_ops[i + 1 :]:
                if earlier.txn == later.txn:
                    continue
                if conflicts(earlier.kind, later.kind):
                    graph.add_edge(earlier.txn, later.txn)
    return graph


def check(
    ops: Iterable[HistoryOp],
    conflicts: Callable[[str, str], bool] = rw_conflict,
) -> SerializabilityReport:
    """Full serializability report for one history."""
    graph = build_graph(ops, conflicts)
    try:
        cycle_edges = nx.find_cycle(graph)
    except nx.NetworkXNoCycle:
        order = list(nx.topological_sort(graph))
        return SerializabilityReport(
            serializable=True, serial_order=order, edges=list(graph.edges)
        )
    cycle = [edge[0] for edge in cycle_edges] + [cycle_edges[-1][1]]
    return SerializabilityReport(
        serializable=False, cycle=cycle, edges=list(graph.edges)
    )


def committed_projection(
    ops: Iterable[HistoryOp], committed: set[str]
) -> list[HistoryOp]:
    """Drop operations of transactions outside ``committed``."""
    return [op for op in ops if op.txn in committed]


# ---------------------------------------------------------------------------
# Multi-site checks
# ---------------------------------------------------------------------------


def global_serializability(
    site_histories: dict[str, list[HistoryOp]],
    conflicts: Callable[[str, str], bool] = rw_conflict,
) -> SerializabilityReport:
    """Global conflict-serializability across sites.

    Transactions named identically on different sites (the global
    transaction ids attached to subtransactions) are one node; the
    union of all per-site conflict edges must be acyclic.  This is the
    criterion the saga baseline violates (EXP-B1) and the paper's
    protocols preserve.
    """
    union = nx.DiGraph()
    for history in site_histories.values():
        graph = build_graph(history, conflicts)
        union.add_nodes_from(graph.nodes)
        union.add_edges_from(graph.edges)
    try:
        cycle_edges = nx.find_cycle(union)
    except nx.NetworkXNoCycle:
        order = list(nx.topological_sort(union))
        return SerializabilityReport(
            serializable=True, serial_order=order, edges=list(union.edges)
        )
    cycle = [edge[0] for edge in cycle_edges] + [cycle_edges[-1][1]]
    return SerializabilityReport(serializable=False, cycle=cycle, edges=list(union.edges))


def quasi_serializability(
    site_histories: dict[str, list[HistoryOp]],
    global_txns: set[str],
    conflicts: Callable[[str, str], bool] = rw_conflict,
) -> SerializabilityReport:
    """Du & Elmagarmid's quasi-serializability.

    Requires (1) every local history serializable and (2) a total order
    of *global* transactions consistent with each local serialization
    order -- i.e. the union of per-site direct conflict edges projected
    onto global transactions is acyclic.  Indirect orderings through
    purely local transactions are deliberately ignored; that is the
    weakening relative to global serializability.
    """
    projected = nx.DiGraph()
    projected.add_nodes_from(global_txns)
    for history in site_histories.values():
        local_report = check(history, conflicts)
        if not local_report.serializable:
            return SerializabilityReport(
                serializable=False, cycle=local_report.cycle
            )
        graph = build_graph(history, conflicts)
        for src, dst in graph.edges:
            if src in global_txns and dst in global_txns:
                projected.add_edge(src, dst)
    try:
        cycle_edges = nx.find_cycle(projected)
    except nx.NetworkXNoCycle:
        order = list(nx.topological_sort(projected))
        return SerializabilityReport(
            serializable=True, serial_order=order, edges=list(projected.edges)
        )
    cycle = [edge[0] for edge in cycle_edges] + [cycle_edges[-1][1]]
    return SerializabilityReport(
        serializable=False, cycle=cycle, edges=list(projected.edges)
    )


def ops_from_engine(engine, by_gtxn: bool = False, committed_only: bool = True) -> list[HistoryOp]:
    """Extract a history from a :class:`~repro.localdb.engine.LocalDatabase`.

    With ``by_gtxn`` the node name of an operation is the owning global
    transaction (subtransactions of one global transaction collapse
    into one node); purely local transactions keep their local ids.
    """
    ops = []
    for record in engine.op_history:
        if committed_only and record.txn_id not in engine.committed_txn_ids:
            continue
        txn = record.gtxn_id if (by_gtxn and record.gtxn_id) else record.txn_id
        ops.append(HistoryOp(record.seq, txn, record.kind, record.table, record.key))
    return ops
