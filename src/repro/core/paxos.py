"""Paxos Commit: replicated, non-blocking commit decisions.

Gray & Lamport's *Consensus on Transaction Commit* replaces the
coordinator's single forced decision-log write with one consensus
instance per global transaction, run over ``2F + 1`` acceptor
processes with their own stable logs.  The decision is *chosen* once a
majority (``F + 1``) of acceptors has accepted the same value, so it
survives any ``F`` acceptor crashes -- and because any coordinator can
read the majority (or finish the ballot at a higher number), a crashed
coordinator never leaves a transaction blocked in doubt: a timeout on
a live peer triggers leader takeover instead of orphan adoption.

The cost claim reproduced by ``bench_p1_paxos``: with ``F = 0`` the
fast path is one Phase 2a/2b round over a single acceptor -- exactly
one forced write per committed transaction, the same as 2PC's one
decision force.

Three pieces live here:

* :class:`PaxosAcceptor` -- one acceptor process with stable
  ``max_ballot`` / ``accepted`` state and a forced write per promise
  or acceptance (its log-force trace records feed the ``repro.check``
  crash-point enumeration, like any site's).
* :class:`AcceptorGroup` -- the ``2F + 1`` ensemble plus the majority
  read path :meth:`AcceptorGroup.decision_for`.
* :class:`PaxosLeader` -- the per-transaction leader embedded in a GTM
  shard: ballot-0 fast path (no Phase 1a -- ballot 0 is reserved for
  the transaction's home coordinator), and the takeover path running a
  full Phase 1a/1b + 2a/2b round at a higher ballot.

Ballot numbering: ballot 0 belongs to the home leader's fast path;
takeover ballots are ``round * n_coordinators + coordinator_index``
with ``round >= 1``, so every proposer owns a disjoint ballot sequence
and all takeover ballots exceed 0.

The read path is deliberately conservative: a majority of readable
acceptors showing *no* accepted record is **not** presumed abort -- a
crashed leader's in-flight ballot-0 Phase 2a messages could still
land.  Presumed abort is only ever concluded through a takeover round:
``F + 1`` promises at a higher ballot with no accepted value prove the
fast path can no longer reach a majority at ballot 0, and the takeover
then *chooses* abort.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.errors import MessageTimeout, NodeUnreachable
from repro.net.node import Node
from repro.sim.events import Future

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.gtm import GlobalTransactionManager
    from repro.net.message import Message
    from repro.net.network import Network
    from repro.sim.kernel import Kernel


class PaxosAcceptor:
    """One acceptor: stable ballot/acceptance state behind forced writes.

    The acceptor's stable storage is modelled like the central decision
    log: the ``max_ballot`` and ``accepted`` dicts survive a crash, but
    an update only lands after its forced write completed -- a crash
    mid-force loses the write (the serve process is interrupted at the
    yield point, before the state mutates).
    """

    def __init__(
        self,
        kernel: "Kernel",
        network: "Network",
        index: int,
        log_force_time: float = 1.0,
    ):
        self.kernel = kernel
        self.network = network
        self.index = index
        self.name = f"acceptor{index}"
        self.log_force_time = log_force_time
        # Acceptors talk to coordinators (central nodes); marking them
        # central keeps the star topology check honest without opening
        # local-to-local links.
        self.node = network.add_node(Node(kernel, self.name, is_central=True))
        self.node.on_restart.append(self._respawn)
        # Stable (crash-surviving) per-transaction state.
        self.max_ballot: dict[str, int] = {}
        self.accepted: dict[str, dict] = {}
        self.forces = 0
        self.promises = 0
        self.acceptances = 0
        self.rejections = 0
        self._serve_process = kernel.spawn(self._serve(), name=f"{self.name}-serve")

    # -- fault injection -----------------------------------------------------

    def crash(self) -> None:
        """Fail the acceptor; stable state survives, volatile work dies."""
        if self.node.crashed:
            return
        self.node.crash()
        if not self._serve_process.done:
            self._serve_process.interrupt(cause=f"{self.name} crashed")

    def restart(self) -> Generator[Any, Any, None]:
        """Bring the acceptor back (the serve loop respawns via hook)."""
        yield from self.node.restart()

    def _respawn(self) -> None:
        if self._serve_process.done:
            self._serve_process = self.kernel.spawn(
                self._serve(), name=f"{self.name}-serve"
            )

    # -- the acceptor protocol -------------------------------------------------

    def _serve(self) -> Generator[Any, Any, None]:
        while True:
            try:
                message = yield from self.node.recv()
            except NodeUnreachable:
                return
            if message.kind == "paxos_p1a":
                yield from self._on_p1a(message)
            elif message.kind == "paxos_p2a":
                yield from self._on_p2a(message)
            # Unknown kinds are dropped: acceptors speak only Paxos.

    def _on_p1a(self, message: "Message") -> Generator[Any, Any, None]:
        """Phase 1a: promise not to accept below ``ballot``."""
        gtxn_id = message.gtxn_id
        ballot = message.payload["ballot"]
        if ballot >= self.max_ballot.get(gtxn_id, -1):
            yield from self._force(gtxn_id)
            self.max_ballot[gtxn_id] = ballot
            self.promises += 1
            self._reply(
                message, "paxos_p1b",
                promised=True, ballot=ballot,
                accepted=self.accepted.get(gtxn_id),
            )
        else:
            self.rejections += 1
            self._reply(
                message, "paxos_p1b",
                promised=False, ballot=self.max_ballot[gtxn_id],
            )

    def _on_p2a(self, message: "Message") -> Generator[Any, Any, None]:
        """Phase 2a: accept ``record`` unless promised to a higher ballot."""
        gtxn_id = message.gtxn_id
        record = message.payload["record"]
        ballot = record["ballot"]
        if ballot >= self.max_ballot.get(gtxn_id, -1):
            if self.accepted.get(gtxn_id) == record:
                # Retransmitted 2a for the already-accepted record: the
                # first force made it durable; just re-ack.
                self._reply(message, "paxos_p2b", accepted=True, ballot=ballot)
                return
            yield from self._force(gtxn_id)
            self.max_ballot[gtxn_id] = ballot
            self.accepted[gtxn_id] = record
            self.acceptances += 1
            self._reply(message, "paxos_p2b", accepted=True, ballot=ballot)
        else:
            self.rejections += 1
            self._reply(
                message, "paxos_p2b",
                accepted=False, ballot=self.max_ballot[gtxn_id],
            )

    def _force(self, gtxn_id: str) -> Generator[Any, Any, None]:
        """One forced write to the acceptor's stable log."""
        start = self.kernel.now
        yield self.log_force_time
        self.forces += 1
        trace = self.kernel.trace
        if trace.enabled:
            trace.emit(
                "log_force", self.name, f"force-{self.forces}",
                txn=gtxn_id, records=1, start=start,
            )

    def _reply(self, message: "Message", kind: str, **payload: Any) -> None:
        self.network.send(message.reply(kind, **payload))

    def __repr__(self) -> str:
        status = "down" if self.node.crashed else "up"
        return f"<PaxosAcceptor {self.name} ({status}) forces={self.forces}>"


class AcceptorGroup:
    """The ``2F + 1`` acceptor ensemble and its majority read path."""

    def __init__(
        self,
        kernel: "Kernel",
        network: "Network",
        f: int,
        log_force_time: float = 1.0,
    ):
        if f < 0:
            raise ValueError(f"negative fault tolerance F={f}")
        self.f = f
        self.acceptors = [
            PaxosAcceptor(kernel, network, i, log_force_time=log_force_time)
            for i in range(2 * f + 1)
        ]
        self.by_name = {a.name: a for a in self.acceptors}
        self.names = [a.name for a in self.acceptors]

    @property
    def majority(self) -> int:
        return self.f + 1

    def crash(self, index: int) -> None:
        self.acceptors[index].crash()

    def restart(self, index: int) -> Generator[Any, Any, None]:
        yield from self.acceptors[index].restart()

    def total_forces(self) -> int:
        return sum(a.forces for a in self.acceptors)

    def decision_for(self, gtxn_id: str) -> Optional[str]:
        """The *chosen* decision readable right now, or ``None``.

        Reads the stable state of every non-crashed acceptor.  A value
        is chosen once ``F + 1`` acceptors hold an accepted record with
        that value (counting across ballots is sound: takeover rounds
        re-propose the highest accepted value they see, so at most one
        value ever reaches a majority, and once reached it is stable).

        ``None`` means "not decidable from here": fewer than ``F + 1``
        acceptors readable, or no value at majority yet.  Crucially, a
        readable majority with *zero* accepted records is still
        ``None`` -- in-flight ballot-0 messages of a crashed leader
        could complete a commit; only a takeover round may conclude
        presumed abort.
        """
        readable = [a for a in self.acceptors if not a.node.crashed]
        if len(readable) < self.majority:
            return None
        counts: dict[str, int] = {}
        for acceptor in readable:
            record = acceptor.accepted.get(gtxn_id)
            if record is not None:
                value = record["value"]
                counts[value] = counts.get(value, 0) + 1
        for value, count in counts.items():
            if count >= self.majority:
                return value
        return None

    def metrics(self) -> dict[str, Any]:
        return {
            "acceptors": len(self.acceptors),
            "f": self.f,
            "acceptor_forces": self.total_forces(),
            "promises": sum(a.promises for a in self.acceptors),
            "acceptances": sum(a.acceptances for a in self.acceptors),
            "rejections": sum(a.rejections for a in self.acceptors),
            "crashed": sum(1 for a in self.acceptors if a.node.crashed),
        }

    def __repr__(self) -> str:
        live = sum(1 for a in self.acceptors if not a.node.crashed)
        return f"<AcceptorGroup 2F+1={len(self.acceptors)} live={live}>"


class PaxosLeader:
    """Per-transaction leader logic, embedded in a GTM shard.

    The home coordinator runs :meth:`commit_fast` (ballot 0, no Phase
    1a).  Any coordinator -- home on retry, or a peer after a takeover
    timeout -- runs :meth:`resolve`, which first tries the cheap
    majority read and then drives full ballots until a decision is
    chosen.
    """

    def __init__(
        self,
        gtm: "GlobalTransactionManager",
        gtxn_id: str,
        rms: list[str],
    ):
        self.gtm = gtm
        self.gtxn_id = gtxn_id
        self.rms = list(rms)

    @property
    def group(self) -> AcceptorGroup:
        group = self.gtm.acceptors
        if group is None:
            raise RuntimeError("paxos leader without an acceptor group")
        return group

    # -- quorum RPC ----------------------------------------------------------

    def _quorum_call(
        self, kind: str, payload: dict[str, Any], need: int
    ) -> Generator[Any, Any, dict[str, "Message"]]:
        """Send ``kind`` to every acceptor; return once ``need`` replied.

        Per-acceptor requests run as tracked child processes (they die
        with the coordinator); crashed or slow acceptors time out
        individually, so ``F`` dead acceptors never stall the quorum.
        """
        group = self.group
        total = len(group.names)
        replies: dict[str, "Message"] = {}
        state = {"done": 0}
        gate = Future(label=f"paxos-quorum:{self.gtxn_id}:{kind}")

        def attempt(name: str) -> Generator[Any, Any, None]:
            try:
                reply = yield from self.gtm.comm.request(
                    name, kind,
                    gtxn_id=self.gtxn_id,
                    timeout=self.gtm.config.msg_timeout,
                    **payload,
                )
                replies[name] = reply
            except MessageTimeout:
                pass
            finally:
                state["done"] += 1
                if not gate._done and (
                    len(replies) >= need or state["done"] >= total
                ):
                    gate.resolve(None)

        for name in group.names:
            process = self.gtm.kernel.spawn(
                attempt(name), name=f"paxos:{self.gtxn_id}:{kind}:{name}"
            )
            self.gtm.track_service(process)
        yield gate
        return dict(replies)

    # -- ballot 0: the fast path ----------------------------------------------

    def commit_fast(self, votes: dict[str, str]) -> Generator[Any, Any, str]:
        """Ballot-0 Phase 2a/2b over the all-prepared vote set.

        Called only when every RM voted prepared; the commit record
        batches the votes, one consensus instance per transaction.
        Returns the chosen decision -- ``"commit"`` unless a higher
        ballot (a takeover that presumed this leader dead) got there
        first, in which case the takeover's choice stands.
        """
        record = {
            "ballot": 0,
            "rms": list(self.rms),
            "value": "commit",
            "votes": dict(votes),
        }
        group = self.group
        while True:
            replies = yield from self._quorum_call(
                "paxos_p2a", {"record": record}, group.majority
            )
            accepts = sum(
                1 for r in replies.values() if r.payload.get("accepted")
            )
            if accepts >= group.majority:
                return "commit"
            if any(not r.payload.get("accepted") for r in replies.values()):
                # Promised to a higher ballot: a takeover is (or was)
                # running; defer to whatever consensus chooses.
                decision = yield from self.resolve()
                return decision
            # Too few acceptors reachable right now; wait and retry.
            yield self.gtm.config.status_poll_interval

    # -- takeover ---------------------------------------------------------------

    def resolve(self) -> Generator[Any, Any, str]:
        """Read or finish the consensus instance; never gives up.

        Loops takeover rounds at increasing ballots until a decision is
        chosen.  Blocks only while more than ``F`` acceptors are down
        -- the bound Paxos promises.
        """
        pool = self.gtm.pool
        if pool is not None and self.gtm in pool.coordinators:
            index = pool.coordinators.index(self.gtm)
            n_coords = len(pool.coordinators)
        else:
            index, n_coords = 0, 1
        round_no = 0
        while True:
            decision = self.group.decision_for(self.gtxn_id)
            if decision is not None:
                return decision
            round_no += 1
            ballot = round_no * n_coords + index
            decision = yield from self._takeover_round(ballot)
            if decision is not None:
                return decision
            yield self.gtm.config.status_poll_interval

    def _takeover_round(self, ballot: int) -> Generator[Any, Any, Optional[str]]:
        """One full Phase 1a/1b + 2a/2b round at ``ballot``.

        Phase 1 majority with no accepted record proves ballot 0 can no
        longer choose commit -- the round then proposes abort (presumed
        abort, now safe).  Otherwise it re-proposes the highest-ballot
        accepted value, preserving any possibly-chosen decision.
        """
        group = self.group
        replies = yield from self._quorum_call(
            "paxos_p1a", {"ballot": ballot}, group.majority
        )
        promised = [
            r for r in replies.values() if r.payload.get("promised")
        ]
        if len(promised) < group.majority:
            return None  # pre-empted or partitioned; caller retries higher
        best: Optional[dict] = None
        for reply in promised:
            accepted = reply.payload.get("accepted")
            if accepted is not None and (
                best is None or accepted["ballot"] > best["ballot"]
            ):
                best = accepted
        record = {
            "ballot": ballot,
            "rms": best["rms"] if best is not None else list(self.rms),
            "value": best["value"] if best is not None else "abort",
            "votes": best["votes"] if best is not None else {},
        }
        replies = yield from self._quorum_call(
            "paxos_p2a", {"record": record}, group.majority
        )
        accepts = sum(1 for r in replies.values() if r.payload.get("accepted"))
        if accepts >= group.majority:
            return record["value"]
        return None
