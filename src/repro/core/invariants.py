"""Run-time invariant checkers.

The paper's correctness obligations, verified on actual executions:

* **Global atomicity** -- every subtransaction of a committed global
  transaction took durable effect exactly once; the effects of an
  aborted global transaction are fully neutralized (never executed,
  locally aborted, or undone by a committed inverse transaction).
* **Global serializability** -- the union of per-site conflict graphs
  over global transactions is acyclic (checked through
  :mod:`repro.core.serializability`).

The atomicity checker works off each engine's transaction history:
forward local transactions carry their global transaction id, inverse
transactions the id suffixed with ``!undo``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.serializability import global_serializability

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.integration.federation import Federation


@dataclass
class AtomicityViolationRecord:
    """One detected violation."""

    gtxn_id: str
    site: str
    kind: str  # "lost_execution" | "double_execution" | "unbalanced_undo"
    detail: str


@dataclass
class AtomicityReport:
    """Outcome of the global-atomicity audit."""

    checked: int = 0
    violations: list[AtomicityViolationRecord] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def __bool__(self) -> bool:
        return self.ok


def _base_id(gtxn_id: str) -> str:
    """Strip the retry suffix (``G7~r2`` -> ``G7``)."""
    return gtxn_id.split("~", 1)[0]


def atomicity_report(federation: "Federation") -> AtomicityReport:
    """Audit every finished global transaction for exactly-once effects."""
    report = AtomicityReport()
    # Per (gtxn, site): committed forward and committed inverse txn counts,
    # and the number of write operations those forward txns performed.
    committed_fw: dict[tuple[str, str], int] = {}
    committed_undo: dict[tuple[str, str], int] = {}
    fw_writes: dict[tuple[str, str], int] = {}
    for site, engine in federation.engines.items():
        for txn in engine._txns.values():
            if txn.gtxn_id is None or txn.state.value != "committed":
                continue
            if txn.gtxn_id.endswith("!undo"):
                key = (_base_id(txn.gtxn_id[: -len("!undo")]), site)
                committed_undo[key] = committed_undo.get(key, 0) + 1
            elif txn.write_set:
                # Read-only L0 transactions owe no durable effect and
                # are excluded from the exactly-once accounting.
                key = (_base_id(txn.gtxn_id), site)
                committed_fw[key] = committed_fw.get(key, 0) + 1
                fw_writes[key] = fw_writes.get(key, 0) + len(txn.write_set)

    protocol = federation.gtm.config.protocol
    # Protocols that execute one L0 transaction per action when the
    # granularity says so; 2PC/3PC/commit-after always run one local
    # transaction per site.
    per_action = (
        federation.gtm.config.granularity == "per_action"
        and protocol in ("before", "saga", "altruistic")
    )
    for outcome in _all_outcomes(federation):
        report.checked += 1
        base = _base_id(outcome.gtxn_id)
        for site in outcome.sites:
            forward = committed_fw.get((base, site), 0)
            undone = committed_undo.get((base, site), 0)
            ops_at_site = _write_ops_at_site(federation, outcome, site)
            if outcome.committed:
                expected = ops_at_site if per_action else 1
                if ops_at_site == 0:
                    continue  # read-only at this site: nothing durable owed
                # Retried attempts were neutralized by inverse txns, so
                # the *net* effect (forward minus undone) is what counts.
                effective = forward - undone
                if effective < expected:
                    report.violations.append(
                        AtomicityViolationRecord(
                            base, site, "lost_execution",
                            f"net {effective}/{expected} forward txns committed",
                        )
                    )
                elif effective > expected:
                    report.violations.append(
                        AtomicityViolationRecord(
                            base, site, "double_execution",
                            f"net {effective}/{expected} forward txns committed",
                        )
                    )
            else:
                # Aborted global transaction: committed forward effects
                # must be matched by committed inverse transactions.
                if forward != undone and ops_at_site > 0:
                    report.violations.append(
                        AtomicityViolationRecord(
                            base, site, "unbalanced_undo",
                            f"{forward} forward vs {undone} inverse committed",
                        )
                    )
    return report


def _all_outcomes(federation: "Federation"):
    """Outcomes across every coordinator shard (one shard in the seed)."""
    for gtm in getattr(federation, "coordinators", [federation.gtm]):
        yield from gtm.outcomes


def _write_ops_at_site(federation: "Federation", outcome, site: str) -> int:
    """How many writing operations the transaction aimed at ``site``.

    Reconstructed from the schema because the outcome does not keep the
    full routed operation list.
    """
    count = 0
    for op_site, op_kind in outcome.routed_ops:
        if op_site == site and op_kind != "read":
            count += 1
    return count


def serializability_ok(federation: "Federation", strict: bool = False) -> bool:
    """Is the committed global history serializable?

    The standard multidatabase criterion: the projection onto
    *globally committed* transactions must be conflict-serializable.
    Locally committed subtransactions of globally aborted transactions
    and their inverse transactions are neutralized pairs and excluded
    (their net effect is void -- that is what the atomicity audit
    verifies).

    With ``strict=True`` the compensated pairs stay in the history;
    then the conflict notion must come from the semantic table, and
    only protocols that hold their L1 locks through the undo (the
    paper's commit-before) pass -- early-release schemes like
    altruistic locking let other transactions slip between an
    erroneously committed transaction and its inverse, exactly the
    §3.3 serializability requirement.

    The conflict notion always matches the federation's concurrency
    control: semantic table => commuting increments do not conflict
    (§4.1); no L1 table (2PC, sagas) => classical read/write conflicts.
    """
    table = federation.gtm.config.resolved_l1_table()
    conflicts = table.conflicts if table is not None else None
    if strict:
        histories = federation.histories(by_gtxn=True)
    else:
        committed = {
            outcome.gtxn_id
            for outcome in _all_outcomes(federation)
            if outcome.committed
        }
        histories = {
            site: [op for op in ops if op.txn in committed]
            for site, ops in federation.histories(by_gtxn=True).items()
        }
    if conflicts is None:
        return bool(global_serializability(histories))
    return bool(global_serializability(histories, conflicts=conflicts))
