"""Run-time invariant checkers.

The paper's correctness obligations, verified on actual executions:

* **Global atomicity** -- every subtransaction of a committed global
  transaction took durable effect exactly once; the effects of an
  aborted global transaction are fully neutralized (never executed,
  locally aborted, or undone by a committed inverse transaction).
* **Global serializability** -- the union of per-site conflict graphs
  over global transactions is acyclic (checked through
  :mod:`repro.core.serializability`).

The atomicity checker works off each engine's transaction history:
forward local transactions carry their global transaction id, inverse
transactions the id suffixed with ``!undo``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.protocols import per_action_protocols
from repro.core.serializability import global_serializability

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.integration.federation import Federation


@dataclass
class AtomicityViolationRecord:
    """One detected violation."""

    gtxn_id: str
    site: str
    kind: str  # "lost_execution" | "double_execution" | "unbalanced_undo"
    detail: str


@dataclass
class AtomicityReport:
    """Outcome of the global-atomicity audit."""

    checked: int = 0
    violations: list[AtomicityViolationRecord] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def __bool__(self) -> bool:
        return self.ok


def _base_id(gtxn_id: str) -> str:
    """Strip the retry suffix (``G7~r2`` -> ``G7``)."""
    return gtxn_id.split("~", 1)[0]


def atomicity_report(federation: "Federation") -> AtomicityReport:
    """Audit every finished global transaction for exactly-once effects."""
    report = AtomicityReport()
    # Per (gtxn, site): committed forward and committed inverse txn counts,
    # and the number of write operations those forward txns performed.
    committed_fw: dict[tuple[str, str], int] = {}
    committed_undo: dict[tuple[str, str], int] = {}
    fw_writes: dict[tuple[str, str], int] = {}
    for site, engine in federation.engines.items():
        for txn in engine._txns.values():
            if txn.gtxn_id is None or txn.state.value != "committed":
                continue
            if txn.gtxn_id.endswith("!undo"):
                key = (_base_id(txn.gtxn_id[: -len("!undo")]), site)
                committed_undo[key] = committed_undo.get(key, 0) + 1
            elif txn.write_set:
                # Read-only L0 transactions owe no durable effect and
                # are excluded from the exactly-once accounting.
                key = (_base_id(txn.gtxn_id), site)
                committed_fw[key] = committed_fw.get(key, 0) + 1
                fw_writes[key] = fw_writes.get(key, 0) + len(txn.write_set)

    protocol = federation.gtm.config.protocol
    # Protocols that execute one L0 transaction per action when the
    # granularity says so; 2PC/3PC/commit-after always run one local
    # transaction per site.
    per_action = (
        federation.gtm.config.granularity == "per_action"
        and protocol in per_action_protocols()
    )
    for outcome in _all_outcomes(federation):
        report.checked += 1
        base = _base_id(outcome.gtxn_id)
        for site in outcome.sites:
            forward = committed_fw.get((base, site), 0)
            undone = committed_undo.get((base, site), 0)
            ops_at_site = _write_ops_at_site(federation, outcome, site)
            if outcome.committed:
                expected = ops_at_site if per_action else 1
                if ops_at_site == 0:
                    continue  # read-only at this site: nothing durable owed
                # Retried attempts were neutralized by inverse txns, so
                # the *net* effect (forward minus undone) is what counts.
                effective = forward - undone
                if effective < expected:
                    report.violations.append(
                        AtomicityViolationRecord(
                            base, site, "lost_execution",
                            f"net {effective}/{expected} forward txns committed",
                        )
                    )
                elif effective > expected:
                    report.violations.append(
                        AtomicityViolationRecord(
                            base, site, "double_execution",
                            f"net {effective}/{expected} forward txns committed",
                        )
                    )
            else:
                # Aborted global transaction: committed forward effects
                # must be matched by committed inverse transactions.
                if forward != undone and ops_at_site > 0:
                    report.violations.append(
                        AtomicityViolationRecord(
                            base, site, "unbalanced_undo",
                            f"{forward} forward vs {undone} inverse committed",
                        )
                    )
    return report


def _all_outcomes(federation: "Federation"):
    """Outcomes across every coordinator shard (one shard in the seed)."""
    for gtm in getattr(federation, "coordinators", [federation.gtm]):
        yield from gtm.outcomes


def _write_ops_at_site(federation: "Federation", outcome, site: str) -> int:
    """How many writing operations the transaction aimed at ``site``.

    Reconstructed from the schema because the outcome does not keep the
    full routed operation list.
    """
    count = 0
    for op_site, op_kind in outcome.routed_ops:
        if op_site == site and op_kind != "read":
            count += 1
    return count


@dataclass
class InvariantViolation:
    """One violated correctness obligation, with a human-readable cause."""

    invariant: str
    detail: str

    def __str__(self) -> str:
        return f"{self.invariant}: {self.detail}"


def convergence_violations(
    federation: "Federation", processes: list | None = None
) -> list[InvariantViolation]:
    """No-unresolved-in-doubt: every global transaction is terminal.

    After a run (and its recovery passes) there must be no unfinished
    submitter, no coordinator still driving a transaction, no orphaned
    in-doubt transaction no failover resolved, and no local
    subtransaction of a global transaction left non-terminal at a site.
    """
    violations = []
    for process in processes or []:
        if not process.done:
            violations.append(
                InvariantViolation("convergence", f"process {process.name} unfinished")
            )
    for gtm in getattr(federation, "coordinators", [federation.gtm]):
        for gtxn_id in sorted(gtm.active):
            violations.append(
                InvariantViolation(
                    "convergence", f"gtxn {gtxn_id} still active at {gtm.name}"
                )
            )
    pool = getattr(federation, "pool", None)
    if pool is not None:
        for gtxn_id in pool.unresolved_orphans():
            violations.append(
                InvariantViolation(
                    "convergence", f"gtxn {gtxn_id} orphaned in-doubt"
                )
            )
    for site, engine in federation.engines.items():
        for txn in engine.active_txns():
            if txn.gtxn_id:
                violations.append(
                    InvariantViolation(
                        "convergence",
                        f"{site}: local {txn.txn_id} of {txn.gtxn_id} non-terminal",
                    )
                )
    return violations


def dirty_undo_violations(federation: "Federation") -> list[InvariantViolation]:
    """No rollback may clobber a concurrent transaction's write.

    Strict protocols make this impossible (write locks are held to the
    end), and Short-Commit's downgrade keeps a shared lock that blocks
    writers until the exposer resolved.  Any recorded clobber means an
    early-release path let a foreign write land between a transaction's
    own write and its undo -- the §3.3 dirty-write hazard, which the
    ``short_release_all`` mutant reintroduces on purpose.
    """
    violations = []
    for site, engine in federation.engines.items():
        for txn_id, table, key in engine.undo_clobbers:
            violations.append(
                InvariantViolation(
                    "dirty_undo",
                    f"{site}: rollback of {txn_id} restored {table}[{key!r}] "
                    "over a foreign write",
                )
            )
    return violations


def lock_release_violations(federation: "Federation") -> list[InvariantViolation]:
    """Lock-release discipline: a quiescent system holds no locks.

    Checks every site's L0 lock table and the shared L1 table: any
    lock still held once no transaction is active means a protocol
    path (abort, undo, recovery) forgot its release.
    """
    violations = []
    for site, engine in federation.engines.items():
        for resource, state in engine.locks._resources.items():
            for holder in state.holders:
                violations.append(
                    InvariantViolation(
                        "lock_release", f"{site}: L0 {resource} held by {holder}"
                    )
                )
    l1 = federation.gtm.l1
    if l1 is not None:
        for resource, state in l1._resources.items():
            for holder in state.holders:
                violations.append(
                    InvariantViolation(
                        "lock_release", f"L1 {resource} held by {holder}"
                    )
                )
    return violations


def redo_drain_violations(federation: "Federation") -> list[InvariantViolation]:
    """§3.2 redo requirement, drained: no pending redo entry survives.

    Commit-after keeps a subtransaction's actions in the central
    redo-log until the site confirms durable commitment.  Once every
    global transaction is terminal, a pending entry means an erroneous
    local abort was never masked by redo -- exactly the protocol's one
    job.  Shards share the central log, so one check covers the pool.
    """
    violations = []
    for entry in federation.gtm.redo_log.pending():
        if federation.gtm.is_active(entry.gtxn_id):
            continue  # still being driven: not a drain violation yet
        violations.append(
            InvariantViolation(
                "redo_drain",
                f"redo entry {entry.gtxn_id}@{entry.site} never confirmed "
                f"({entry.redo_count} redos)",
            )
        )
    return violations


def undo_drain_violations(federation: "Federation") -> list[InvariantViolation]:
    """§3.3 undo requirement, drained: the central undo-log is empty.

    Every finished global transaction forgets its undo records (after
    running them, for aborts).  A surviving record of an inactive
    transaction is an inverse transaction that was owed and never ran.
    """
    violations = []
    for record in federation.gtm.undo_log.records:
        if federation.gtm.is_active(record.gtxn_id):
            continue
        violations.append(
            InvariantViolation(
                "undo_drain",
                f"undo record for {record.gtxn_id}@{record.site} "
                f"({record.operation}) never executed/forgotten",
            )
        )
    return violations


def inverse_order_violations(federation: "Federation") -> list[InvariantViolation]:
    """§3.3 inverse-transaction ordering: undo runs in reverse.

    For every globally aborted transaction whose committed forward
    effects at a site were neutralized by inverse transactions, the
    committed inverse operations must touch the undone keys in exactly
    the reverse of the forward execution order (reverse order is always
    safe; any other order is only sound for fully commuting actions,
    which this audit does not assume).

    Retried attempts re-execute forward operations, so the check is
    restricted to transactions with a single attempt, and skipped when
    the undo optimizer (which legally collapses inverses) is on.
    """
    if federation.gtm.config.optimize_undo:
        return []
    violations = []
    forward: dict[tuple[str, str], list] = {}
    inverse: dict[tuple[str, str], list] = {}
    attempts: dict[str, set[str]] = {}
    for site, engine in federation.engines.items():
        for record in engine.op_history:
            if record.txn_id not in engine.committed_txn_ids or not record.gtxn_id:
                continue
            if record.table.startswith("_"):
                # System tables (commit markers, ...): bookkeeping rows
                # keyed per direction, not forward effects being undone.
                continue
            if record.gtxn_id.endswith("!undo"):
                attempt = record.gtxn_id[: -len("!undo")]
                key = (_base_id(attempt), site)
                inverse.setdefault(key, []).append((record.table, record.key))
            elif record.kind != "read":
                key = (_base_id(record.gtxn_id), site)
                forward.setdefault(key, []).append((record.table, record.key))
                attempts.setdefault(_base_id(record.gtxn_id), set()).add(
                    record.gtxn_id
                )
    for key, undone in inverse.items():
        base, site = key
        if len(attempts.get(base, set())) != 1:
            continue  # retries interleave attempts; ordering is per attempt
        executed = forward.get(key, [])
        # The undone suffix of the forward sequence, reversed, is the
        # only order reverse-undo can produce.  A failure mid-forward
        # leaves a *prefix* executed, so compare against the reversed
        # prefix of matching length.
        expected = list(reversed(executed[: len(undone)]))
        if undone != expected:
            violations.append(
                InvariantViolation(
                    "inverse_order",
                    f"{base}@{site}: inverses ran {undone}, expected {expected} "
                    f"(reverse of forward order {executed})",
                )
            )
    return violations


def replica_convergence_violations(
    federation: "Federation",
) -> list[InvariantViolation]:
    """Data-plane replication: serving replicas are byte-converged.

    For every partition, every *serving* member (in the member list and
    currently up) must hold exactly the same records in the partition's
    local table.  Atomic commitment is supposed to give this for free --
    replicas are ordinary participants -- so a divergence means a write
    reached part of a replica set, an eviction raced a commit, or a
    rejoin skipped its resync.  Members that are down or evicted are
    excluded: they reconcile on rejoin, and *that* path is exactly what
    the exclusion must not mask once they serve again.

    No-op (empty list) for federations without a data plane.
    """
    dataplane = getattr(federation, "dataplane", None)
    if dataplane is None:
        return []
    violations = []
    for partition in dataplane.map.partitions:
        serving = [
            member
            for member in partition.members
            if not federation.nodes[member].crashed
        ]
        if len(serving) < 2:
            continue
        images = {
            member: sorted(
                (repr(key), repr(value))
                for key, value in dataplane.table_records(
                    member, partition.local_table
                ).items()
            )
            for member in serving
        }
        reference = images[serving[0]]
        for member in serving[1:]:
            if images[member] != reference:
                violations.append(
                    InvariantViolation(
                        "replica_convergence",
                        f"{partition.table}/p{partition.index}: {member} "
                        f"diverges from primary {serving[0]} "
                        f"(epoch {partition.epoch})",
                    )
                )
    return violations


def check_invariants(
    federation: "Federation",
    processes: list | None = None,
    strict_serializability: bool = False,
) -> list[InvariantViolation]:
    """Evaluate every correctness obligation on a finished execution.

    The shared predicate battery behind both the property tests and the
    ``repro.check`` exploration engine -- one implementation, so the
    two can never drift apart.  Returns the (possibly empty) list of
    violations, most fundamental first.
    """
    violations: list[InvariantViolation] = []
    report = atomicity_report(federation)
    for violation in report.violations:
        violations.append(
            InvariantViolation(
                "atomicity",
                f"{violation.kind}: {violation.gtxn_id}@{violation.site} "
                f"({violation.detail})",
            )
        )
    if not serializability_ok(federation):
        violations.append(
            InvariantViolation(
                "serializability", "committed global history has a conflict cycle"
            )
        )
    if strict_serializability and not serializability_ok(federation, strict=True):
        violations.append(
            InvariantViolation(
                "serializability_strict",
                "history with compensated pairs has a conflict cycle",
            )
        )
    violations.extend(convergence_violations(federation, processes))
    violations.extend(dirty_undo_violations(federation))
    violations.extend(lock_release_violations(federation))
    violations.extend(redo_drain_violations(federation))
    violations.extend(undo_drain_violations(federation))
    violations.extend(inverse_order_violations(federation))
    violations.extend(replica_convergence_violations(federation))
    return violations


def engine_quiescent_violations(engine) -> list[InvariantViolation]:
    """Site-local quiescence: no active transactions, no held locks.

    The engine-level slice of the federation predicates, usable by
    tests that drive a bare :class:`~repro.localdb.engine.LocalDatabase`
    (e.g. after crash recovery) without a federation around it.
    """
    violations = []
    for txn in engine.active_txns():
        violations.append(
            InvariantViolation(
                "engine_quiescent", f"{engine.site}: {txn.txn_id} still active"
            )
        )
    for resource, state in engine.locks._resources.items():
        for holder in state.holders:
            violations.append(
                InvariantViolation(
                    "engine_quiescent",
                    f"{engine.site}: lock {resource} held by {holder}",
                )
            )
    return violations


def serializability_ok(federation: "Federation", strict: bool = False) -> bool:
    """Is the committed global history serializable?

    The standard multidatabase criterion: the projection onto
    *globally committed* transactions must be conflict-serializable.
    Locally committed subtransactions of globally aborted transactions
    and their inverse transactions are neutralized pairs and excluded
    (their net effect is void -- that is what the atomicity audit
    verifies).

    With ``strict=True`` the compensated pairs stay in the history;
    then the conflict notion must come from the semantic table, and
    only protocols that hold their L1 locks through the undo (the
    paper's commit-before) pass -- early-release schemes like
    altruistic locking let other transactions slip between an
    erroneously committed transaction and its inverse, exactly the
    §3.3 serializability requirement.

    The conflict notion always matches the federation's concurrency
    control: semantic table => commuting increments do not conflict
    (§4.1); no L1 table (2PC, sagas) => classical read/write conflicts.
    """
    table = federation.gtm.config.resolved_l1_table()
    conflicts = table.conflicts if table is not None else None
    if strict:
        histories = federation.histories(by_gtxn=True)
    else:
        committed = {
            outcome.gtxn_id
            for outcome in _all_outcomes(federation)
            if outcome.committed
        }
        histories = {
            site: [op for op in ops if op.txn in committed]
            for site, ops in federation.histories(by_gtxn=True).items()
        }
    if conflicts is None:
        return bool(global_serializability(histories))
    return bool(global_serializability(histories, conflicts=conflicts))
