"""Protocol-level resolution of in-doubt globals after a site restart.

Local (ARIES-style) recovery reinstates prepared subtransactions in the
READY state with their locks -- but only the *global* layer knows what
should become of them.  This manager runs after every site restart and
re-resolves whatever the restarted site still holds in doubt, per
protocol semantics:

* **2PC / presumed abort / 3PC** -- consult the central
  :class:`~repro.core.gtm.DecisionLog`: a hardened commit record is
  re-driven to the site; anything without one is aborted (presumed
  abort -- exactly the [MLO 86] rule, and the only safe answer for the
  fire-and-forget aborts of the presumed-abort variant).
* **commit-after** -- the §3.2 redo obligation survives the crash: any
  redo-log entry for the site whose global decision was a hardened
  commit but whose local commit was never confirmed is re-driven until
  the local commits.
* **commit-before (per-site)** -- a globally aborted transaction whose
  inverse never confirmed is re-driven from the central undo-log, after
  the durable commit marker confirms the forward subtransaction really
  committed there.

Transactions whose coordinator process is still running are left alone:
the coordinator's own retry machinery (status polls, redo loops,
``commit_until_done``) resolves them as soon as the site answers again.
Interfering here could abort a transaction the coordinator is about to
commit.  Every request this manager sends targets an idempotent handler
keyed by the same marker the coordinator would use, so recovery and a
still-live coordinator can never double-apply.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.core.protocols import redo_window_protocols
from repro.errors import MessageTimeout

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.gtm import GlobalTransactionManager


class GlobalRecoveryManager:
    """Re-resolves in-doubt globals when a site comes back (§3.2/§3.3)."""

    def __init__(self, gtm: "GlobalTransactionManager"):
        self.gtm = gtm
        self.passes = 0
        self.resolved_indoubt = 0
        self.redriven_redos = 0
        self.redriven_undos = 0
        self.orphans_terminated = 0
        # Data-plane promotions this coordinator adopted: after a lease
        # expiry evicts a partition member, routing already targets the
        # promoted membership; the adoption records the handover so
        # in-flight retries and later recovery sweeps agree on who owns
        # the partition.
        self.promotions_adopted = 0
        # Coordinator-failover accounting (sharded pools only).
        self.failovers = 0
        self.failover_resolved = 0
        # Paxos: consensus instances this manager had to *conclude* at
        # a higher ballot because nothing else would ever decide them.
        self.paxos_concluded = 0
        self._concluding: set[str] = set()
        # Per-site recovery epoch: a fresh restart supersedes any sweep
        # loop still running from the previous one.
        self._epochs: dict[str, int] = {}
        # (gtxn_id, site) pairs with a termination already in flight.
        self._terminating: set[tuple[str, str]] = set()

    # ------------------------------------------------------------------

    def recover_site(self, site: str) -> Generator[Any, Any, None]:
        """Recovery sweeps for a freshly restarted ``site``.

        Sweeps repeat (with ``status_poll_interval`` pauses) until the
        site reports no in-doubt subtransactions: an in-doubt local
        whose coordinator is still running is deliberately left alone
        on one sweep, and a later sweep -- after the coordinator made or
        gave up on its decision -- resolves it.  Every step is
        idempotent and every timeout ends the loop: if the site crashes
        again the pass after its next restart starts over.
        """
        self.passes += 1
        epoch = self._epochs.get(site, 0) + 1
        self._epochs[site] = epoch
        self.gtm.kernel.trace.emit("recovery_pass", self.gtm.name, site)
        config = self.gtm.config
        while True:
            if self.gtm.crashed:
                return  # this coordinator died; a peer's pass takes over
            unresolved = yield from self._resolve_in_doubt(site)
            if config.protocol in redo_window_protocols():
                yield from self._redrive_redos(site)
            if config.protocol == "before" and config.granularity == "per_site":
                yield from self._redrive_undos(site)
            if not unresolved:
                return
            yield config.status_poll_interval
            if self._epochs.get(site) != epoch:
                return  # a newer restart owns the sweep loop now
            if self.gtm.network.node(site).crashed:
                return  # down again; the next restart starts over

    # ------------------------------------------------------------------
    # Data-plane promotions
    # ------------------------------------------------------------------

    def note_promotion(
        self, site: str, partition: int, epoch: int, primary: Optional[str]
    ) -> None:
        """Adopt a replica promotion the data plane just decided.

        The placement map has already evicted ``site`` and bumped the
        partition to ``epoch``; nothing needs re-driving here -- stale
        requests are fenced at the sites and in-flight transactions
        re-route on their next retry.  The adoption is recorded so the
        handover shows up in traces and the coordinator's metrics.
        """
        self.promotions_adopted += 1
        trace = self.gtm.kernel.trace
        if trace.enabled:
            trace.emit(
                "promotion_adopted", self.gtm.name, f"p{partition}",
                evicted=site, primary=primary, epoch=epoch,
            )

    # ------------------------------------------------------------------
    # Orphan termination: replies nobody was waiting for
    # ------------------------------------------------------------------

    #: Reply kinds that prove the site holds *live* state for the
    #: transaction (a begun, executed or prepared subtransaction).
    #: Terminal acknowledgements and status answers are excluded: they
    #: carry no obligation to clean anything up.
    _STATE_FREE_KINDS = frozenset(
        {"finished", "status_report", "recover_report",
         # Acceptor replies: consensus bookkeeping, not site state.  A
         # straggling promise or acceptance after its leader crashed
         # must not be mistaken for an orphaned subtransaction at the
         # "site" named acceptorN.
         "paxos_p1b", "paxos_p2b"}
    )

    def note_orphan_reply(self, message: Any) -> None:
        """A site answered a request the coordinator already gave up on.

        If the answered transaction is no longer active, the site may
        be holding a subtransaction (with its locks) that nothing will
        ever resolve: the coordinator sent its decision *before* this
        straggler arrived.  Terminate it with the hardened decision --
        or presumed abort -- exactly as a restart-time recovery pass
        would.  Not applicable to commit-before, whose locals are
        already terminal when they answer; its stragglers are settled
        through durable markers by the coordinator itself.
        """
        gtxn_id = message.gtxn_id
        if not gtxn_id or self.gtm.is_active(gtxn_id) or self.gtm.crashed:
            return
        if not self.gtm.network.reliable:
            # Without retransmission a straggler can only be a reply
            # that raced its own timeout -- the coordinator's decide
            # broadcast already covers the site.  Ghost deliveries that
            # outlive the whole attempt exist only on reliable links.
            return
        if self.gtm.config.protocol == "before":
            return
        if message.kind in self._STATE_FREE_KINDS:
            return
        key = (gtxn_id, message.sender)
        if key in self._terminating:
            return
        self._terminating.add(key)
        self.gtm.track_service(
            self.gtm.kernel.spawn(
                self._terminate_orphan(gtxn_id, message.sender),
                name=f"orphan-decide:{gtxn_id}@{message.sender}",
            )
        )

    def _resolved_decision(self, gtxn_id: str) -> Optional[str]:
        """The durable decision recovery may act on, or ``None``.

        Classic protocols read the central decision log: a hardened
        commit record, else presumed abort -- never ``None``.  Paxos
        reads the acceptor majority instead; ``None`` there means the
        consensus instance is still in flux (an in-flight ballot could
        yet choose commit), so the caller must leave the local in doubt
        -- the pending takeover finishes the ballot and a later sweep
        reads the chosen value.
        """
        if self.gtm.acceptors is not None:
            return self.gtm.acceptors.decision_for(gtxn_id)
        return self.gtm.decision_log.decision_for(gtxn_id) or "abort"

    def _settled_decision(
        self, gtxn_id: str, rms: list[str]
    ) -> Generator[Any, Any, Optional[str]]:
        """Like :meth:`_resolved_decision`, but *concludes* paxos limbo.

        A transaction its home coordinator aborted on the fast path --
        presumed abort, no consensus record -- can leave a prepared
        local in doubt forever: no acceptor majority will ever answer,
        and no takeover is pending because the home never crashed.  When
        nothing is driving the instance anymore, recovery must finish
        the consensus itself: a takeover round at a higher ballot blocks
        ballot 0, re-proposes any accepted value it finds (so a chosen
        commit survives), and otherwise *chooses* abort.  That round is
        safe against any concurrent leader -- it is ordinary Paxos.

        Returns ``None`` only while someone else may still decide (a
        live driver, a pending pool takeover, or a conclusion already
        in flight here); the caller's sweep retries later.
        """
        decision = self._resolved_decision(gtxn_id)
        if decision is not None or self.gtm.acceptors is None:
            return decision
        if self.gtm.is_active(gtxn_id):
            return None  # a driver or a pending takeover settles it
        if gtxn_id in self._concluding:
            return None  # one concluding round at a time per instance
        from repro.core.paxos import PaxosLeader

        self._concluding.add(gtxn_id)
        try:
            self.gtm.kernel.trace.emit(
                "paxos_conclude", self.gtm.name, gtxn_id
            )
            decision = yield from PaxosLeader(self.gtm, gtxn_id, rms).resolve()
            self.paxos_concluded += 1
            return decision
        finally:
            self._concluding.discard(gtxn_id)

    def _terminate_orphan(
        self, gtxn_id: str, site: str
    ) -> Generator[Any, Any, None]:
        config = self.gtm.config
        decision = yield from self._settled_decision(gtxn_id, [site])
        if decision is None:
            self._terminating.discard((gtxn_id, site))
            return  # paxos: a pending takeover or conclusion settles it
        self.gtm.kernel.trace.emit(
            "recovery_decide", self.gtm.name, gtxn_id,
            at=site, decision=decision, cause="orphan reply",
        )
        try:
            while True:
                if self.gtm.crashed:
                    return  # a peer's failover owns the cleanup now
                try:
                    yield from self.gtm.comm.request(
                        site, "decide", gtxn_id=gtxn_id,
                        timeout=config.msg_timeout * 4,
                        decision=decision, marker_key=None,
                    )
                    self.orphans_terminated += 1
                    return
                except MessageTimeout:
                    if self.gtm.network.node(site).crashed:
                        # A running orphan dies with the crash; a
                        # prepared one is handled by restart recovery.
                        return
                    yield config.status_poll_interval
        finally:
            self._terminating.discard((gtxn_id, site))

    # ------------------------------------------------------------------

    def _resolve_in_doubt(self, site: str) -> Generator[Any, Any, int]:
        """Decide the READY subtransactions local recovery reinstated.

        Returns the number of in-doubt subtransactions left unresolved
        (coordinator still running, or the site stopped answering); the
        caller sweeps again later while any remain.
        """
        config = self.gtm.config
        try:
            reply = yield from self.gtm.comm.request(
                site, "recover_query", timeout=config.msg_timeout
            )
        except MessageTimeout:
            # Unreachable: crashed again (the next restart retries) or
            # partitioned/lossy (the caller's sweep loop retries).
            return 1
        unresolved = 0
        for gtxn_id in reply.payload.get("in_doubt", ()):
            if self.gtm.is_active(gtxn_id):
                # A coordinator is still driving this transaction --
                # deciding here could contradict the decision it is
                # about to make.  Leave it for a later sweep.
                unresolved += 1
                continue
            # Orphaned in-doubt subtransaction: the hardened decision
            # record is authoritative, its absence means presumed abort.
            # (Paxos: the acceptor majority is authoritative instead; an
            # instance nobody is driving is concluded at a higher ballot
            # -- abort is only ever *chosen*, never presumed.)
            decision = yield from self._settled_decision(gtxn_id, [site])
            if decision is None:
                unresolved += 1
                continue
            self.gtm.kernel.trace.emit(
                "recovery_decide", self.gtm.name, gtxn_id, at=site, decision=decision
            )
            try:
                yield from self.gtm.comm.request(
                    site, "decide", gtxn_id=gtxn_id,
                    timeout=config.msg_timeout * 4,
                    decision=decision, marker_key=None,
                )
            except MessageTimeout:
                unresolved += 1
                continue
            self.resolved_indoubt += 1
        return unresolved

    def _redrive_redos(
        self, site: str, adopting: Optional[str] = None
    ) -> Generator[Any, Any, None]:
        """Re-drive orphaned §3.2 redo obligations for ``site``.

        ``adopting`` names a transaction this manager is itself
        failing over right now: the pool counts pending orphans as
        active (so a concurrent site-restart sweep leaves them alone),
        but the adopter must not let that guard skip its own orphan --
        it would forget a hardened commit's redo obligation.
        """
        config = self.gtm.config
        for entry in self.gtm.redo_log.pending():
            if entry.site != site:
                continue
            if entry.gtxn_id != adopting and self.gtm.is_active(entry.gtxn_id):
                continue  # the coordinator's redo loop is still alive
            if self.gtm.decision_log.decision_for(entry.gtxn_id) != "commit":
                continue  # no hardened commit: nothing to redo
            self.gtm.kernel.trace.emit(
                "recovery_redo", self.gtm.name, entry.gtxn_id, at=site
            )
            try:
                reply = yield from self.gtm.comm.request(
                    site, "redo_subtxn", gtxn_id=entry.gtxn_id,
                    timeout=config.msg_timeout * 20,
                    ops=entry.operations, marker_key=entry.gtxn_id,
                )
            except MessageTimeout:
                continue
            if reply.payload.get("outcome") == "committed":
                self.gtm.redo_log.mark_committed(entry.gtxn_id, site)
                self.redriven_redos += 1

    def _redrive_undos(self, site: str) -> Generator[Any, Any, None]:
        """Re-drive orphaned commit-before inverse transactions."""
        config = self.gtm.config
        if not config.durable_status:
            return  # cannot safely confirm the forward commit (EXP-A2)
        gtxn_ids: list[str] = []
        for record in self.gtm.undo_log.records:
            if record.site == site and record.gtxn_id not in gtxn_ids:
                gtxn_ids.append(record.gtxn_id)
        for gtxn_id in gtxn_ids:
            if self.gtm.is_active(gtxn_id):
                continue  # the coordinator's undo loop is still alive
            inverse_ops = [
                record.inverse
                for record in self.gtm.undo_log.inverses_for(gtxn_id, site)
            ]
            if not inverse_ops:
                continue
            # Never undo a site whose forward subtransaction did not
            # commit -- confirm through the durable commit marker first.
            try:
                status = yield from self.gtm.comm.request(
                    site, "status_query", timeout=config.msg_timeout,
                    marker_key=f"{gtxn_id}:{site}", durable=True,
                )
            except MessageTimeout:
                continue
            if status.payload.get("outcome") != "committed":
                continue
            self.gtm.kernel.trace.emit(
                "recovery_undo", self.gtm.name, gtxn_id, at=site
            )
            try:
                reply = yield from self.gtm.comm.request(
                    site, "undo_subtxn", gtxn_id=gtxn_id,
                    timeout=config.msg_timeout * 4,
                    inverse_ops=inverse_ops,
                    marker_key=f"undo:{gtxn_id}:{site}",
                )
            except MessageTimeout:
                continue
            if reply.payload.get("outcome") == "undone":
                self.redriven_undos += 1

    # ------------------------------------------------------------------
    # Coordinator failover: adopt a crashed peer's in-flight globals
    # ------------------------------------------------------------------

    def adopt_orphans(self, orphans: dict[str, Any]) -> Generator[Any, Any, None]:
        """Resolve the in-flight transactions of a crashed coordinator.

        ``orphans`` maps attempt ids to their
        :class:`~repro.core.global_txn.GlobalTransaction` objects,
        captured by the pool at crash time.  Resolution follows the
        same per-protocol rules as a site restart, read from the
        *shared* central logs:

        * 2PC / presumed abort / 3PC -- a hardened commit record is
          re-driven to every participant; without one, presumed abort.
        * commit-after -- the decision (or presumed abort) is
          re-driven, then the §3.2 redo obligations for hardened
          commits are re-driven from the shared redo-log.
        * commit-before -- presumed abort: unfinished locals abort,
          durably committed effects are compensated by inverse
          transactions.  Per-action inverses are reconstructed from
          the durable commit markers' before-images, so even an
          action whose reply died with the coordinator is undone.

        The mapping is mutated in place: resolved (or handed-off)
        entries are popped, so the pool can re-adopt the remainder if
        this adopter crashes mid-failover.
        """
        if not orphans:
            return
        self.failovers += 1
        config = self.gtm.config
        self.gtm.kernel.trace.emit(
            "failover", self.gtm.name, self.gtm.name, orphans=len(orphans)
        )
        # Drain-style loop (not a snapshot of the keys): a double crash
        # of the same shard mid-adoption merges its still-unsettled
        # orphans into this very batch, and the drain picks them up --
        # the pool spawns no second adoption while one is running.
        while orphans:
            if self.gtm.crashed:
                return  # the pool re-adopts whatever is left
            gtxn_id = min(orphans)
            gtxn = orphans[gtxn_id]
            if config.protocol == "before":
                if config.granularity == "per_action":
                    resolved = yield from self._failover_undo_actions(gtxn)
                else:
                    resolved = yield from self._failover_before_site(gtxn)
            else:
                resolved = yield from self._failover_decide(gtxn)
            # Even a partially-settled orphan is popped: every leftover
            # local is in-doubt at a *crashed* site, and that site's
            # restart recovery resolves it from the same shared logs.
            orphans.pop(gtxn_id, None)
            if resolved:
                self.failover_resolved += 1

    def takeover_paxos(self, gtxn: Any) -> Generator[Any, Any, bool]:
        """Finish a crashed peer's consensus instance; settle its sites.

        Paxos Commit's replacement for orphan adoption: this
        coordinator becomes the transaction's leader at a higher
        ballot (:meth:`PaxosLeader.resolve
        <repro.core.paxos.PaxosLeader.resolve>`).  The chosen value --
        the crashed leader's commit if it reached an acceptor
        majority, abort otherwise -- is then delivered to every
        participant.  Non-blocking under any F acceptor crashes plus
        the coordinator crash: no step here waits on the dead shard.
        """
        from repro.core.paxos import PaxosLeader

        self.failovers += 1
        self.gtm.kernel.trace.emit(
            "paxos_takeover_txn", self.gtm.name, gtxn.gtxn_id,
            sites=len(gtxn.sites()),
        )
        leader = PaxosLeader(self.gtm, gtxn.gtxn_id, sorted(gtxn.sites()))
        decision = yield from leader.resolve()
        settled_all = True
        for site in gtxn.sites():
            self.gtm.kernel.trace.emit(
                "recovery_decide", self.gtm.name, gtxn.gtxn_id,
                at=site, decision=decision, cause="paxos takeover",
            )
            settled = yield from self._decide_until_settled(
                site, gtxn.gtxn_id, decision, None
            )
            if not settled:
                settled_all = False
        if settled_all:
            self.failover_resolved += 1
        return settled_all

    def _failover_decide(self, gtxn: Any) -> Generator[Any, Any, bool]:
        """Redrive the hardened decision (or presumed abort) everywhere."""
        config = self.gtm.config
        decision = self.gtm.decision_log.decision_for(gtxn.gtxn_id) or "abort"
        redo = config.protocol in redo_window_protocols() and decision == "commit"
        settled_all = True
        for site in gtxn.sites():
            self.gtm.kernel.trace.emit(
                "recovery_decide", self.gtm.name, gtxn.gtxn_id,
                at=site, decision=decision, cause="coordinator failover",
            )
            marker = gtxn.gtxn_id if redo else None
            settled = yield from self._decide_until_settled(
                site, gtxn.gtxn_id, decision, marker
            )
            if not settled:
                settled_all = False
        if redo:
            # An erroneously aborted local shows up as a pending redo
            # entry with a hardened commit: the §3.2 obligation.
            for site in gtxn.sites():
                yield from self._redrive_redos(site, adopting=gtxn.gtxn_id)
        if settled_all and config.protocol in redo_window_protocols():
            self.gtm.redo_log.forget(gtxn.gtxn_id)
        return settled_all

    def _failover_before_site(self, gtxn: Any) -> Generator[Any, Any, bool]:
        """Presumed abort for commit-before/per_site orphans."""
        settled_all = True
        for site in gtxn.sites():
            self.gtm.kernel.trace.emit(
                "recovery_decide", self.gtm.name, gtxn.gtxn_id,
                at=site, decision="abort", cause="coordinator failover",
            )
            # Settles unfinished locals (cheap abort of a running
            # subtransaction); an already-committed local reports back
            # and is compensated below.
            settled = yield from self._decide_until_settled(
                site, gtxn.gtxn_id, "abort", None
            )
            if not settled:
                settled_all = False
        for site in gtxn.sites():
            yield from self._redrive_undos(site)
        if settled_all:
            self.gtm.undo_log.forget(gtxn.gtxn_id)
        return settled_all

    def _failover_undo_actions(self, gtxn: Any) -> Generator[Any, Any, bool]:
        """Presumed abort for commit-before/per_action orphans.

        Walks the orphan's routed operations in reverse: any action
        whose durable commit marker confirms it took effect is undone
        by an inverse reconstructed from the marker's before-image --
        the central undo-log alone can miss the final action when the
        crash ate its reply.
        """
        from repro.mlt.actions import inverse_of

        config = self.gtm.config
        if not config.durable_status:
            # Volatile placement cannot confirm forward commits; the
            # honest answer is to leave the effects (EXP-A2 territory).
            return True
        settled_all = True
        for index in range(len(gtxn.operations) - 1, -1, -1):
            operation = gtxn.operations[index]
            if operation.site is None or operation.kind == "read":
                continue
            marker_key = f"{gtxn.gtxn_id}:{index}"
            status = yield from self._marker_status(operation.site, marker_key)
            if status is None:
                settled_all = False
                continue
            if status.payload.get("outcome") != "committed":
                continue  # the action never took durable effect
            inverse = inverse_of(operation, status.payload.get("before"))
            if inverse is None:
                continue
            self.gtm.kernel.trace.emit(
                "recovery_undo", self.gtm.name, gtxn.gtxn_id,
                at=operation.site, op=str(inverse),
            )
            undone = yield from self._execute_inverse_action(
                gtxn.gtxn_id, operation.site, inverse, f"undo:{marker_key}"
            )
            if not undone:
                settled_all = False
        if settled_all:
            self.gtm.undo_log.forget(gtxn.gtxn_id)
        return settled_all

    def _decide_until_settled(
        self, site: str, gtxn_id: str, decision: str, marker_key: Optional[str]
    ) -> Generator[Any, Any, bool]:
        """Deliver a decision, waiting out transient unreachability.

        Returns ``False`` when the site is down (its restart recovery
        finishes the job from the shared logs) or this adopter died.
        """
        config = self.gtm.config
        while True:
            if self.gtm.crashed:
                return False
            try:
                yield from self.gtm.comm.request(
                    site, "decide", gtxn_id=gtxn_id,
                    timeout=config.msg_timeout * 4,
                    decision=decision, marker_key=marker_key,
                )
                return True
            except MessageTimeout:
                if self.gtm.network.node(site).crashed:
                    return False
                yield config.status_poll_interval

    def _marker_status(
        self, site: str, marker_key: str
    ) -> Generator[Any, Any, Optional[Any]]:
        """Durable-marker status, waiting for the site to come up (§3.3)."""
        config = self.gtm.config
        while True:
            if self.gtm.crashed:
                return None
            try:
                reply = yield from self.gtm.comm.request(
                    site, "status_query", timeout=config.msg_timeout,
                    marker_key=marker_key, durable=True,
                )
                return reply
            except MessageTimeout:
                yield config.status_poll_interval

    def _execute_inverse_action(
        self, gtxn_id: str, site: str, inverse: Any, marker_key: str
    ) -> Generator[Any, Any, bool]:
        """One reconstructed inverse action as a marker-guarded L0 txn."""
        config = self.gtm.config
        while True:
            if self.gtm.crashed:
                return False
            try:
                reply = yield from self.gtm.comm.request(
                    site, "execute_l0", gtxn_id=gtxn_id,
                    timeout=config.msg_timeout,
                    op=inverse, marker_key=marker_key, undo=True,
                )
            except MessageTimeout:
                status = yield from self._marker_status(site, marker_key)
                if status is None:
                    return False
                if status.payload.get("outcome") == "committed":
                    break  # the inverse did commit; the reply was lost
                continue
            if reply.kind == "l0_done":
                break
            yield config.status_poll_interval
        self.gtm.undo_log.note_undo()
        self.redriven_undos += 1
        return True
