"""Redo machinery for the commit-after protocol (§3.2).

The *redo requirement*: a local transaction erroneously aborted after
its ready answer must be repeated until it commits.  The redo-log keeps
the actions of every subtransaction until the site confirms durable
commitment.

The *atomic commit + propagation* problem (§3.2) is modelled through
``log_placement``:

* ``"indb"`` -- the subtransaction writes a commit marker into a
  relation of the existing database as part of itself ([WV 90]), so the
  marker and the commit are atomic.  After a site or communication
  manager crash the marker answers the "did it commit?" question
  reliably.
* ``"volatile"`` -- the communication manager remembers outcomes only
  in memory.  After a crash the redo mechanism must guess; the paper's
  two erroneous situations (double execution / lost execution) become
  observable unless the operations are idempotent.  Experiment EXP-A2
  demonstrates exactly this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.mlt.actions import Operation

#: Name of the in-database commit-marker relation.
COMMITLOG_TABLE = "_commitlog"


@dataclass
class RedoEntry:
    """Actions of one subtransaction, kept until durably committed."""

    gtxn_id: str
    site: str
    operations: list[Operation]
    local_txn_id: Optional[str] = None
    committed: bool = False
    redo_count: int = 0


@dataclass
class RedoLog:
    """Central redo-log of the commit-after protocol."""

    entries: dict[tuple[str, str], RedoEntry] = field(default_factory=dict)
    total_redos: int = 0

    def record(self, gtxn_id: str, site: str, operations: list[Operation]) -> RedoEntry:
        """Register a subtransaction before the commit decision is sent."""
        entry = RedoEntry(gtxn_id, site, list(operations))
        self.entries[(gtxn_id, site)] = entry
        return entry

    def entry(self, gtxn_id: str, site: str) -> RedoEntry:
        return self.entries[(gtxn_id, site)]

    def mark_committed(self, gtxn_id: str, site: str) -> None:
        """Propagation of the local commit: no further redo allowed.

        Tolerates an entry already dropped by ``forget``: concurrent
        failover sweeps may re-drive the same obligation, and whichever
        confirmation settles the transaction first forgets it while the
        other's reply is still in flight.
        """
        entry = self.entries.get((gtxn_id, site))
        if entry is not None:
            entry.committed = True

    def note_redo(self, gtxn_id: str, site: str) -> int:
        entry = self.entries[(gtxn_id, site)]
        entry.redo_count += 1
        self.total_redos += 1
        return entry.redo_count

    def pending(self) -> list[RedoEntry]:
        """Entries whose local commit has not been confirmed."""
        return [e for e in self.entries.values() if not e.committed]

    def forget(self, gtxn_id: str) -> None:
        """Drop all entries of a finished global transaction."""
        for key in [k for k in self.entries if k[0] == gtxn_id]:
            del self.entries[key]
