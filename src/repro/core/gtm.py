"""The global transaction manager of the central system.

Accepts global transactions (lists of
:class:`~repro.mlt.actions.Operation`), decomposes them through the
global schema, runs the configured atomic commitment protocol and
enforces global serializability with the L1 lock table appropriate for
that protocol:

* ``2pc`` -- no L1 table: flat distributed strict 2PL plus the ready
  state already yields global serializability.
* ``after`` -- read/write L1 locks held until every local finally
  committed (the §3.2 serializability requirement: the first
  execution's serialization order must survive redo).
* ``before`` -- the multi-level L1 table (semantic by default) held to
  the end of the global transaction (§3.3/§4); this is the concurrency
  control that multi-level transactions need anyway.

Global transactions aborted by L1 deadlock/timeout are retried up to
``retry_attempts`` times with a backoff -- their locals were cleaned up
by the protocol's abort path, so a retry is a fresh run.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.core.global_txn import GlobalOutcome, GlobalTransaction
from repro.core.protocols.base import make_protocol
from repro.core.redo import RedoLog
from repro.core.undo import UndoLog
from repro.errors import DurabilityOrderViolation, MessageTimeout
from repro.mlt.conflicts import READ_WRITE_TABLE, SEMANTIC_TABLE, ConflictTable
from repro.mlt.locks import SemanticLockManager
from repro.net.adaptive import AdaptiveWindow
from repro.sim.events import Future

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.integration.comm_central import CentralCommunicationManager
    from repro.integration.schema import GlobalSchema
    from repro.mlt.actions import Operation
    from repro.net.network import Network
    from repro.sim.kernel import Kernel
    from repro.sim.process import Process


@dataclass
class GTMConfig:
    """Configuration of the global transaction manager.

    Attributes
    ----------
    protocol:
        ``"2pc"`` | ``"after"`` | ``"before"`` | ``"3pc"``.
    granularity:
        For commit-before: ``"per_action"`` (multi-level, §4) or
        ``"per_site"`` ([BST 90]/[WV 90] style).
    l1_table:
        Override of the L1 conflict table (``None`` = protocol default;
        the EXP-A1 ablation passes ``READ_WRITE_TABLE`` to commit-before).
    l1_timeout:
        Bound on L1 lock waits.  Must be finite: two global transactions
        can deadlock *across* levels -- one waiting at L1 for an object
        the other holds, the other's redo waiting at L0 for a page the
        first's open subtransaction holds.  Neither level's deadlock
        detector can see such a cycle (the L1 table knows nothing about
        page co-location), so a timeout breaks it; the victim retries.
    durable_status:
        Query the in-database commit markers on ambiguity; must match
        the communication managers' ``log_placement`` (the
        :class:`~repro.integration.federation.Federation` keeps them in
        sync).
    pipeline_window:
        With a positive window, commit decisions bound for the same
        site within the window share one ``decide_group`` round-trip
        and their decision records share one forced write at the
        central decision log (the group-decision pipeline).  ``0``
        keeps the seed's one-decide-per-transaction path.
    pipeline_policy:
        ``"static"`` (fixed-delay flush, the PR 1 behaviour) or
        ``"adaptive"`` (size-or-deadline with a load-sensed window,
        mirroring the network's ``batch_policy``).
    pipeline_max_group:
        Flush a site's decision group as soon as it reaches this many
        members instead of waiting out the window (``0`` disables the
        size trigger).
    piggyback_decisions:
        Commit-before per-site only: ride the local-commit request on
        the site's *last* data message instead of a dedicated
        ``finish_subtxn`` round, and read the local outcome off the
        data reply -- the paper's "votes ride on data" taken one step
        further.
    """

    protocol: str = "before"
    granularity: str = "per_action"
    l1_table: Optional[ConflictTable] = None
    l1_timeout: Optional[float] = 150.0
    msg_timeout: float = 50.0
    status_poll_interval: float = 10.0
    #: Paxos Commit only: how long a crashed coordinator's peers wait
    #: before taking over its undecided transactions at a higher ballot
    #: (timeout-driven leader change, not orphan adoption).
    paxos_takeover_timeout: float = 80.0
    durable_status: bool = True
    #: Collapse inverse transactions (net increments, dead-write
    #: elimination) before sending them -- the optimization §4.1 defers.
    optimize_undo: bool = False
    max_redo_rounds: int = 50
    retry_attempts: int = 5
    retry_backoff: float = 5.0
    pipeline_window: float = 0.0
    pipeline_policy: str = "static"
    pipeline_max_group: int = 0
    piggyback_decisions: bool = False

    def __post_init__(self) -> None:
        if self.granularity not in ("per_action", "per_site"):
            raise ValueError(f"unknown granularity {self.granularity!r}")
        if self.pipeline_policy not in ("static", "adaptive"):
            raise ValueError(f"unknown pipeline policy {self.pipeline_policy!r}")
        if self.pipeline_max_group < 0:
            raise ValueError(f"negative pipeline_max_group {self.pipeline_max_group}")

    @property
    def coordinator_mode(self) -> str:
        """``"paxos"`` (replicated decisions) or ``"classic"``."""
        return "paxos" if self.protocol == "paxos" else "classic"

    def resolved_l1_table(self) -> Optional[ConflictTable]:
        """The L1 conflict table this configuration actually uses.

        Derived from the protocol registry: the §3.2 redo family
        (``after``, ``one_phase``) and the altruistic baseline hold
        read/write L1 locks, commit-before runs the semantic table,
        everything else has no L1 layer.
        """
        if self.l1_table is not None:
            return self.l1_table
        from repro.core.protocols import PROTOCOL_REGISTRY

        info = PROTOCOL_REGISTRY.get(self.protocol)
        if info is None or info.l1_table is None:
            return None  # 2pc / 2pc-pa / 3pc / paxos / saga / short_commit
        return READ_WRITE_TABLE if info.l1_table == "read_write" else SEMANTIC_TABLE


class DecisionLog:
    """Central log of global commit decisions.

    A decision record must be hardened (one forced write) before the
    decision may reach any participant -- otherwise a central crash
    could forget a decision whose effects are already visible at a
    site.  The group-decision pipeline hands whole batches to
    :meth:`harden`; every record in a batch shares one force, the
    central-side analogue of local group commit.  Hardening is
    idempotent per transaction: a transaction decided on several sites
    forces only once.
    """

    def __init__(self):
        self.records: list[tuple[str, str]] = []
        self.forces = 0
        self._hardened: set[str] = set()
        self._decisions: dict[str, str] = {}

    def harden(self, gtxn_ids: list[str], decision: str) -> None:
        """Durably record ``decision`` for every id, with one force."""
        fresh = [g for g in gtxn_ids if g not in self._hardened]
        if not fresh:
            return
        for gtxn_id in fresh:
            self._hardened.add(gtxn_id)
            self.records.append((gtxn_id, decision))
            self._decisions[gtxn_id] = decision
        self.forces += 1

    def decision_for(self, gtxn_id: str) -> Optional[str]:
        """The hardened decision for ``gtxn_id``, or ``None``.

        This is the recovery manager's read path: an in-doubt
        subtransaction whose global has no hardened commit record is
        resolved by presumed abort.
        """
        return self._decisions.get(gtxn_id)


class DecisionPipeline:
    """Per-site batching of commit decisions (the group-decision path).

    Concurrent global transactions that reach their commit decision
    within ``window`` of each other and involve the same site share one
    ``decide_group`` round-trip, and their decision records share one
    forced write at the central :class:`DecisionLog`.  On a timeout the
    whole group resolves to ``ambiguous`` and every member falls back
    to its protocol's individual retry machinery, so crash behaviour is
    unchanged.

    The flush policy mirrors the network's: *size-or-deadline* (a group
    reaching ``max_group`` members flushes immediately), and with
    ``policy="adaptive"`` the deadline window is load-sensed via
    :class:`~repro.net.adaptive.AdaptiveWindow` so small groups stop
    being held hostage to the full window under bursts.  A per-site
    generation counter invalidates a scheduled deadline flush whose
    group was already sent by the size trigger (or dropped by a crash).
    """

    def __init__(
        self,
        gtm: "GlobalTransactionManager",
        window: float,
        policy: str = "static",
        max_group: int = 0,
    ):
        self.gtm = gtm
        self.window = window
        self.max_group = max_group
        self.controller = (
            AdaptiveWindow(window) if policy == "adaptive" and window > 0 else None
        )
        self._queues: dict[str, list[tuple[str, str, Optional[str], Future]]] = {}
        # Enqueue timestamps (adaptive only), parallel to ``_queues``.
        self._times: dict[str, list[float]] = {}
        # Per-site flush generation: bumped whenever a site's group is
        # popped, so a stale scheduled deadline cannot flush its
        # successor group early.
        self._gen: dict[str, int] = {}
        self.groups_sent = 0
        self.decisions_grouped = 0
        self.dropped_on_crash = 0
        self.size_flushes = 0
        self.deadline_flushes = 0

    def decide(
        self, site: str, gtxn_id: str, decision: str, marker_key: Optional[str]
    ) -> Generator[Any, Any, str]:
        """Queue one decision for ``site``; returns the site's outcome.

        The returned string is ``committed`` / ``aborted`` /
        ``ambiguous`` -- the same vocabulary as an individual decide.
        """
        future = Future(label=f"group-decide:{site}:{gtxn_id}")
        queue = self._queues.setdefault(site, [])
        queue.append((gtxn_id, decision, marker_key, future))
        if self.controller is not None:
            self._times.setdefault(site, []).append(self.gtm.kernel.now)
        if self.max_group and len(queue) >= self.max_group:
            self.size_flushes += 1
            self._flush_site(site)
        elif len(queue) == 1:
            window = (
                self.controller.current if self.controller is not None
                else self.window
            )
            self.gtm.kernel._schedule(
                window, self._flush, site, self._gen.get(site, 0)
            )
        outcome = yield future
        return outcome

    def crash(self) -> None:
        """The coordinator died: its buffered decisions die with it.

        Queued decisions were never hardened, so presumed abort is the
        correct (and only safe) resolution -- the failover peer settles
        every member through the recovery machinery.  What must *not*
        happen is the scheduled ``_flush`` firing later and hardening a
        commit on behalf of a dead coordinator: a peer may already have
        presumed those very transactions aborted.
        """
        for site, entries in self._queues.items():
            self.dropped_on_crash += len(entries)
            self._gen[site] = self._gen.get(site, 0) + 1
        self._queues.clear()
        self._times.clear()

    def _flush(self, site: str, generation: int) -> None:
        if self._gen.get(site, 0) != generation:
            return  # size-flushed, or dropped on crash, in the meantime
        if self.gtm.crashed or self.gtm.comm.node.crashed:
            # The flush timer outlives the node; the buffer does not.
            entries = self._queues.pop(site, None)
            if entries:
                self.dropped_on_crash += len(entries)
                self._gen[site] = generation + 1
                if site in self._times:
                    self._times[site] = []
            return
        if self._queues.get(site):
            self.deadline_flushes += 1
        self._flush_site(site)

    def _flush_site(self, site: str) -> None:
        entries = self._queues.pop(site, None)
        if not entries:
            return
        self._gen[site] = self._gen.get(site, 0) + 1
        if self.controller is not None:
            times = self._times.get(site)
            if times:
                now = self.gtm.kernel.now
                self.controller.observe(sum(now - t for t in times))
                self._times[site] = []
        self.groups_sent += 1
        self.decisions_grouped += len(entries)
        self.gtm.track_service(
            self.gtm.kernel.spawn(
                self._send_group(site, entries), name=f"decide-group:{site}"
            )
        )

    def _send_group(
        self, site: str, entries: list[tuple[str, str, Optional[str], Future]]
    ) -> Generator[Any, Any, None]:
        acceptors = self.gtm.acceptors
        if acceptors is not None:
            # Paxos coordinator mode: the durable decision record is the
            # chosen value at a majority of acceptors, and
            # ``PaxosCommit`` delivers decisions directly -- never
            # through this pipeline.  A decision reaching the group path
            # without a chosen value would let the participant ack
            # overtake durable acceptance, the exact reordering the
            # ballot-0 fast path forbids; fail loudly instead of
            # hardening a central record the acceptors never chose.
            unchosen = [
                gtxn_id for gtxn_id, decision, _, _ in entries
                if acceptors.decision_for(gtxn_id) != decision
            ]
            if unchosen:
                raise DurabilityOrderViolation(
                    "pipelined decision(s) for "
                    + ", ".join(sorted(unchosen))
                    + " not chosen at the acceptor group: a participant "
                    "ack would precede the durable acceptance"
                )
        # One forced write hardens every decision record in the group.
        self.gtm.decision_log.harden(
            [gtxn_id for gtxn_id, _, _, _ in entries], "commit"
        )
        decisions = [
            {"gtxn_id": gtxn_id, "decision": decision, "marker_key": marker_key}
            for gtxn_id, decision, marker_key, _ in entries
        ]
        try:
            reply = yield from self.gtm.comm.request(
                site, "decide_group",
                timeout=self.gtm.config.msg_timeout * 4,
                decisions=decisions,
            )
        except MessageTimeout:
            for _, _, _, future in entries:
                future.resolve("ambiguous")
            return
        outcomes = reply.payload.get("outcomes", {})
        for gtxn_id, _, _, future in entries:
            future.resolve(outcomes.get(gtxn_id, "ambiguous"))


class GlobalTransactionManager:
    """Coordinator for global transactions (runs at the central node)."""

    def __init__(
        self,
        kernel: "Kernel",
        network: "Network",
        schema: "GlobalSchema",
        comm: "CentralCommunicationManager",
        config: Optional[GTMConfig] = None,
        share_from: Optional["GlobalTransactionManager"] = None,
    ):
        self.kernel = kernel
        self.network = network
        self.schema = schema
        self.comm = comm
        self.config = config or GTMConfig()
        self.name = comm.node.name
        self.protocol = make_protocol(self.config.protocol)
        if share_from is not None:
            # A pool shard: the L1 lock service and the decision /
            # redo / undo logs model shared, durable central storage --
            # every coordinator reads and writes the same instances, so
            # failover peers see each other's hardened state.
            self.l1 = share_from.l1
            self.redo_log = share_from.redo_log
            self.undo_log = share_from.undo_log
            self.decision_log = share_from.decision_log
        else:
            table = self.config.resolved_l1_table()
            if table is None:
                self.l1 = None
            elif self.config.protocol == "altruistic":
                from repro.baselines.altruistic import AltruisticLockManager

                self.l1 = AltruisticLockManager(
                    kernel, table, default_timeout=self.config.l1_timeout
                )
            else:
                self.l1 = SemanticLockManager(
                    kernel, table, default_timeout=self.config.l1_timeout, name="L1"
                )
            self.redo_log = RedoLog()
            self.undo_log = UndoLog()
            self.decision_log = DecisionLog()
        self.pipeline: Optional[DecisionPipeline] = (
            DecisionPipeline(
                self,
                self.config.pipeline_window,
                policy=self.config.pipeline_policy,
                max_group=self.config.pipeline_max_group,
            )
            if self.config.pipeline_window > 0
            else None
        )
        self._ids = itertools.count(1)
        self.outcomes: list[GlobalOutcome] = []
        self.committed = 0
        self.aborted = 0
        # Attempt-id -> in-flight GlobalTransaction.  The recovery
        # manager consults this so a restart never aborts an in-doubt
        # subtransaction whose coordinator is still deciding.
        self.active: dict[str, GlobalTransaction] = {}
        # Coordinator-crash support.  ``crashed`` mirrors the node's
        # state at the GTM layer; ``pool`` is the backref a
        # CoordinatorPool installs; ``_inflight`` maps gtxn id to its
        # coordinator process and ``_service`` holds auxiliary
        # processes (recovery sweeps, orphan terminations, failovers)
        # -- all of them die with the coordinator.
        self.crashed = False
        self.pool: Optional[Any] = None
        # Paxos coordinator mode: the federation installs the shared
        # AcceptorGroup here; ``None`` on every classic path.
        self.acceptors: Optional[Any] = None
        # Data-plane placement: the federation installs the shared
        # DataPlane here when a placement is configured; ``None`` (the
        # default) keeps decomposition on the static schema path.
        self.dataplane: Optional[Any] = None
        self._inflight: dict[str, "Process"] = {}
        self._service: list["Process"] = []
        from repro.core.recovery import GlobalRecoveryManager

        self.recovery = GlobalRecoveryManager(self)
        # Stragglers answering an abandoned request reveal orphaned
        # subtransactions; the recovery manager terminates them.
        self.comm.on_unmatched.append(self.recovery.note_orphan_reply)

    # ------------------------------------------------------------------

    def submit(
        self,
        operations: list["Operation"],
        name: Optional[str] = None,
        intends_abort: bool = False,
    ) -> "Process":
        """Run a global transaction asynchronously.

        Returns the process; joining it yields the
        :class:`~repro.core.global_txn.GlobalOutcome`.
        """
        gtxn_id = name or f"G{next(self._ids)}"
        process = self.kernel.spawn(
            self._tracked_run(operations, gtxn_id, intends_abort),
            name=f"gtxn:{gtxn_id}",
        )
        self._inflight[gtxn_id] = process
        return process

    def _tracked_run(
        self,
        operations: list["Operation"],
        gtxn_id: str,
        intends_abort: bool,
    ) -> Generator[Any, Any, GlobalOutcome]:
        try:
            outcome = yield from self.run_transaction(
                operations, gtxn_id, intends_abort
            )
            return outcome
        finally:
            self._inflight.pop(gtxn_id, None)

    # ------------------------------------------------------------------
    # Pool support
    # ------------------------------------------------------------------

    def is_active(self, gtxn_id: str) -> bool:
        """Is any (live) coordinator still driving ``gtxn_id``?

        With a pool the check spans every shard: a peer's recovery pass
        must not presume-abort a transaction another coordinator is
        about to decide.
        """
        if self.pool is not None:
            return self.pool.is_active(gtxn_id)
        return gtxn_id in self.active

    def track_service(self, process: "Process") -> None:
        """Register an auxiliary process that dies with this coordinator."""
        if len(self._service) > 32:
            self._service = [p for p in self._service if not p.done]
        self._service.append(process)

    def run_transaction(
        self,
        operations: list["Operation"],
        gtxn_id: str,
        intends_abort: bool = False,
    ) -> Generator[Any, Any, GlobalOutcome]:
        """Execute one global transaction, retrying on L1 conflicts."""
        from repro.core.protocols.base import ProtocolContext
        from repro.integration.decompose import decompose

        submit_time = self.kernel.now
        attempt = 0
        while True:
            attempt += 1
            attempt_id = gtxn_id if attempt == 1 else f"{gtxn_id}~r{attempt - 1}"
            try:
                decomposition = decompose(self.schema, operations, self.dataplane)
            except Exception as exc:
                from repro.dataplane.placement import PlacementUnavailable

                if not isinstance(exc, PlacementUnavailable):
                    raise
                # A frozen/memberless partition: transient by design
                # (rejoins unfreeze, restarts repopulate), so back off
                # and re-route exactly like an L1-conflict retry.
                if attempt <= self.config.retry_attempts:
                    yield self.config.retry_backoff * attempt
                    continue
                outcome = GlobalOutcome(
                    gtxn_id=attempt_id,
                    committed=False,
                    reason=str(exc),
                    submit_time=submit_time,
                    attempts=attempt,
                )
                outcome.finish_time = self.kernel.now
                self.outcomes.append(outcome)
                self.aborted += 1
                return outcome
            gtxn = GlobalTransaction(
                self.kernel, attempt_id, decomposition.ordered, origin=self.name
            )
            outcome = GlobalOutcome(
                gtxn_id=attempt_id,
                committed=False,
                submit_time=submit_time,
                sites=decomposition.sites,
                attempts=attempt,
                routed_ops=[(op.site, op.kind) for op in decomposition.ordered],
            )
            ctx = ProtocolContext(self, gtxn, decomposition, outcome, intends_abort)
            self.active[attempt_id] = gtxn
            try:
                yield from self.protocol.run(ctx)
            finally:
                ctx.release_l1()
                self.active.pop(attempt_id, None)
            outcome.finish_time = self.kernel.now
            if (
                not outcome.committed
                and outcome.retriable
                and attempt <= self.config.retry_attempts
            ):
                yield self.config.retry_backoff * attempt
                continue
            self.outcomes.append(outcome)
            if outcome.committed:
                self.committed += 1
            else:
                self.aborted += 1
            return outcome

    # ------------------------------------------------------------------

    def metrics(self) -> dict[str, Any]:
        """Coordinator-side counters for the experiment reports."""
        committed = [o for o in self.outcomes if o.committed]
        return {
            "global_committed": self.committed,
            "global_aborted": self.aborted,
            "redo_executions": sum(o.redo_executions for o in self.outcomes),
            "undo_executions": sum(o.undo_executions for o in self.outcomes),
            "mean_response_time": (
                sum(o.response_time for o in committed) / len(committed)
                if committed
                else 0.0
            ),
            "l1_waits": self.l1.waits if self.l1 else 0,
            "l1_wait_time": self.l1.total_wait_time if self.l1 else 0.0,
            "l1_hold_time": self.l1.total_hold_time if self.l1 else 0.0,
            "l1_deadlocks": self.l1.deadlocks if self.l1 else 0,
            # Paxos folds the acceptor-group forces into the decision
            # figure (only once, at the shard named "central", which
            # every report reads): the acceptor majority *is* the
            # durable decision record, so the §4 cost accounting stays
            # comparable across coordinator modes.
            "decision_forces": self.decision_log.forces
            + (
                self.acceptors.total_forces()
                if self.acceptors is not None and self.name == "central"
                else 0
            ),
            "decision_groups": self.pipeline.groups_sent if self.pipeline else 0,
            "decisions_grouped": (
                self.pipeline.decisions_grouped if self.pipeline else 0
            ),
            "decision_size_flushes": (
                self.pipeline.size_flushes if self.pipeline else 0
            ),
            "decision_deadline_flushes": (
                self.pipeline.deadline_flushes if self.pipeline else 0
            ),
            "recovery_passes": self.recovery.passes,
            "recovery_resolved_indoubt": self.recovery.resolved_indoubt,
            "recovery_redriven_redos": self.recovery.redriven_redos,
            "recovery_redriven_undos": self.recovery.redriven_undos,
            "recovery_orphans_terminated": self.recovery.orphans_terminated,
            "recovery_promotions_adopted": self.recovery.promotions_adopted,
        }

    def __repr__(self) -> str:
        return (
            f"<GlobalTransactionManager protocol={self.config.protocol} "
            f"committed={self.committed} aborted={self.aborted}>"
        )
