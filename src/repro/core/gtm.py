"""The global transaction manager of the central system.

Accepts global transactions (lists of
:class:`~repro.mlt.actions.Operation`), decomposes them through the
global schema, runs the configured atomic commitment protocol and
enforces global serializability with the L1 lock table appropriate for
that protocol:

* ``2pc`` -- no L1 table: flat distributed strict 2PL plus the ready
  state already yields global serializability.
* ``after`` -- read/write L1 locks held until every local finally
  committed (the §3.2 serializability requirement: the first
  execution's serialization order must survive redo).
* ``before`` -- the multi-level L1 table (semantic by default) held to
  the end of the global transaction (§3.3/§4); this is the concurrency
  control that multi-level transactions need anyway.

Global transactions aborted by L1 deadlock/timeout are retried up to
``retry_attempts`` times with a backoff -- their locals were cleaned up
by the protocol's abort path, so a retry is a fresh run.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.core.global_txn import GlobalOutcome, GlobalTransaction, GlobalTxnState
from repro.core.protocols.base import make_protocol
from repro.core.redo import RedoLog
from repro.core.undo import UndoLog
from repro.mlt.conflicts import READ_WRITE_TABLE, SEMANTIC_TABLE, ConflictTable
from repro.mlt.locks import SemanticLockManager

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.integration.comm_central import CentralCommunicationManager
    from repro.integration.schema import GlobalSchema
    from repro.mlt.actions import Operation
    from repro.net.network import Network
    from repro.sim.kernel import Kernel
    from repro.sim.process import Process


@dataclass
class GTMConfig:
    """Configuration of the global transaction manager.

    Attributes
    ----------
    protocol:
        ``"2pc"`` | ``"after"`` | ``"before"`` | ``"3pc"``.
    granularity:
        For commit-before: ``"per_action"`` (multi-level, §4) or
        ``"per_site"`` ([BST 90]/[WV 90] style).
    l1_table:
        Override of the L1 conflict table (``None`` = protocol default;
        the EXP-A1 ablation passes ``READ_WRITE_TABLE`` to commit-before).
    l1_timeout:
        Bound on L1 lock waits.  Must be finite: two global transactions
        can deadlock *across* levels -- one waiting at L1 for an object
        the other holds, the other's redo waiting at L0 for a page the
        first's open subtransaction holds.  Neither level's deadlock
        detector can see such a cycle (the L1 table knows nothing about
        page co-location), so a timeout breaks it; the victim retries.
    durable_status:
        Query the in-database commit markers on ambiguity; must match
        the communication managers' ``log_placement`` (the
        :class:`~repro.integration.federation.Federation` keeps them in
        sync).
    """

    protocol: str = "before"
    granularity: str = "per_action"
    l1_table: Optional[ConflictTable] = None
    l1_timeout: Optional[float] = 150.0
    msg_timeout: float = 50.0
    status_poll_interval: float = 10.0
    durable_status: bool = True
    #: Collapse inverse transactions (net increments, dead-write
    #: elimination) before sending them -- the optimization §4.1 defers.
    optimize_undo: bool = False
    max_redo_rounds: int = 50
    retry_attempts: int = 5
    retry_backoff: float = 5.0

    def __post_init__(self) -> None:
        if self.granularity not in ("per_action", "per_site"):
            raise ValueError(f"unknown granularity {self.granularity!r}")

    def resolved_l1_table(self) -> Optional[ConflictTable]:
        """The L1 conflict table this configuration actually uses."""
        if self.l1_table is not None:
            return self.l1_table
        if self.protocol in ("after", "altruistic"):
            return READ_WRITE_TABLE
        if self.protocol == "before":
            return SEMANTIC_TABLE
        return None  # 2pc / 2pc-pa / 3pc / saga: no L1 layer


class GlobalTransactionManager:
    """Coordinator for global transactions (runs at the central node)."""

    def __init__(
        self,
        kernel: "Kernel",
        network: "Network",
        schema: "GlobalSchema",
        comm: "CentralCommunicationManager",
        config: Optional[GTMConfig] = None,
    ):
        self.kernel = kernel
        self.network = network
        self.schema = schema
        self.comm = comm
        self.config = config or GTMConfig()
        self.protocol = make_protocol(self.config.protocol)
        table = self.config.resolved_l1_table()
        if table is None:
            self.l1 = None
        elif self.config.protocol == "altruistic":
            from repro.baselines.altruistic import AltruisticLockManager

            self.l1 = AltruisticLockManager(
                kernel, table, default_timeout=self.config.l1_timeout
            )
        else:
            self.l1 = SemanticLockManager(
                kernel, table, default_timeout=self.config.l1_timeout, name="L1"
            )
        self.redo_log = RedoLog()
        self.undo_log = UndoLog()
        self._ids = itertools.count(1)
        self.outcomes: list[GlobalOutcome] = []
        self.committed = 0
        self.aborted = 0

    # ------------------------------------------------------------------

    def submit(
        self,
        operations: list["Operation"],
        name: Optional[str] = None,
        intends_abort: bool = False,
    ) -> "Process":
        """Run a global transaction asynchronously.

        Returns the process; joining it yields the
        :class:`~repro.core.global_txn.GlobalOutcome`.
        """
        gtxn_id = name or f"G{next(self._ids)}"
        return self.kernel.spawn(
            self.run_transaction(operations, gtxn_id, intends_abort),
            name=f"gtxn:{gtxn_id}",
        )

    def run_transaction(
        self,
        operations: list["Operation"],
        gtxn_id: str,
        intends_abort: bool = False,
    ) -> Generator[Any, Any, GlobalOutcome]:
        """Execute one global transaction, retrying on L1 conflicts."""
        from repro.core.protocols.base import ProtocolContext
        from repro.integration.decompose import decompose

        submit_time = self.kernel.now
        attempt = 0
        while True:
            attempt += 1
            attempt_id = gtxn_id if attempt == 1 else f"{gtxn_id}~r{attempt - 1}"
            decomposition = decompose(self.schema, operations)
            gtxn = GlobalTransaction(self.kernel, attempt_id, decomposition.ordered)
            outcome = GlobalOutcome(
                gtxn_id=attempt_id,
                committed=False,
                submit_time=submit_time,
                sites=decomposition.sites,
                attempts=attempt,
                routed_ops=[(op.site, op.kind) for op in decomposition.ordered],
            )
            ctx = ProtocolContext(self, gtxn, decomposition, outcome, intends_abort)
            try:
                yield from self.protocol.run(ctx)
            finally:
                ctx.release_l1()
            outcome.finish_time = self.kernel.now
            if (
                not outcome.committed
                and outcome.retriable
                and attempt <= self.config.retry_attempts
            ):
                yield self.config.retry_backoff * attempt
                continue
            self.outcomes.append(outcome)
            if outcome.committed:
                self.committed += 1
            else:
                self.aborted += 1
            return outcome

    # ------------------------------------------------------------------

    def metrics(self) -> dict[str, Any]:
        """Coordinator-side counters for the experiment reports."""
        committed = [o for o in self.outcomes if o.committed]
        return {
            "global_committed": self.committed,
            "global_aborted": self.aborted,
            "redo_executions": sum(o.redo_executions for o in self.outcomes),
            "undo_executions": sum(o.undo_executions for o in self.outcomes),
            "mean_response_time": (
                sum(o.response_time for o in committed) / len(committed)
                if committed
                else 0.0
            ),
            "l1_waits": self.l1.waits if self.l1 else 0,
            "l1_wait_time": self.l1.total_wait_time if self.l1 else 0.0,
            "l1_hold_time": self.l1.total_hold_time if self.l1 else 0.0,
            "l1_deadlocks": self.l1.deadlocks if self.l1 else 0,
        }

    def __repr__(self) -> str:
        return (
            f"<GlobalTransactionManager protocol={self.config.protocol} "
            f"committed={self.committed} aborted={self.aborted}>"
        )
