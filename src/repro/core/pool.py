"""Sharded commit coordination: a pool of global transaction managers.

The paper's architecture (§2, Fig. 1) funnels every global transaction
through one central GTM -- the scalability wall.  Following the
partitioned-coordinator designs of *Consensus on Transaction Commit*
(Gray & Lamport) and *Multi-Shot Distributed Transaction Commit*
(Chockler & Gotsman), the pool runs N coordinator instances and routes
each global transaction to one shard:

* ``hash`` -- CRC32 of the gtxn id modulo N (uniform spread, the
  default), or
* ``affinity`` -- CRC32 of the transaction's first routed site, so
  transactions over the same data tend to meet at the same coordinator
  (cheaper L1 conflict handling, hotter shards under skew).

The shards share one L1 lock service and one set of central logs
(decision / redo / undo) -- the model of durable shared central
storage.  That sharing is what makes **failover** sound: when a
coordinator crashes, any peer can resolve its in-flight transactions
through the existing recovery machinery, reading the crashed shard's
hardened decisions from the very same logs (hardened-commit redrive,
presumed abort, the §3.2 redo obligation, and commit-before undo
redrive -- see :meth:`GlobalRecoveryManager.adopt_orphans
<repro.core.recovery.GlobalRecoveryManager.adopt_orphans>`).

With one coordinator the pool is a transparent pass-through: routing,
ids and event schedules are exactly the single-GTM seed's.
"""

from __future__ import annotations

import itertools
import zlib
from typing import TYPE_CHECKING, Any, Generator, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.global_txn import GlobalOutcome, GlobalTransaction
    from repro.core.gtm import GlobalTransactionManager
    from repro.mlt.actions import Operation
    from repro.sim.kernel import Kernel
    from repro.sim.process import Process

ROUTINGS = ("hash", "affinity")


class AllCoordinatorsDown(RuntimeError):
    """Every shard in the pool is crashed; nothing can accept work."""


class CoordinatorPool:
    """Routes global transactions across N coordinators with failover."""

    def __init__(
        self,
        kernel: "Kernel",
        coordinators: list["GlobalTransactionManager"],
        routing: str = "hash",
    ):
        if not coordinators:
            raise ValueError("a pool needs at least one coordinator")
        if routing not in ROUTINGS:
            raise ValueError(f"unknown routing {routing!r} (use one of {ROUTINGS})")
        self.kernel = kernel
        self.coordinators = list(coordinators)
        self.routing = routing
        self._ids = itertools.count(1)
        #: Orphans of crashed coordinators not yet handed to an adopter
        #: (every live peer was down, or the adopter crashed too).
        self._pending_orphans: dict[str, "GlobalTransaction"] = {}
        #: Adopter -> the (mutable) batch it is currently resolving;
        #: ``adopt_orphans`` pops entries as it settles them, so on an
        #: adopter crash the leftover is exactly what must be re-adopted.
        self._adoptions: dict[int, dict[str, "GlobalTransaction"]] = {}
        #: Adopters with an adoption process in flight.  A second crash
        #: of the same shard while its orphans are mid-adoption merges
        #: into the running batch instead of spawning a duplicate
        #: adoption that would redrive the same transactions twice.
        self._adoption_running: set[int] = set()
        #: Paxos coordinator mode: undecided transactions of a crashed
        #: shard wait here for the takeover timeout, then a live peer
        #: finishes their consensus instances at a higher ballot
        #: (timeout-driven leader change, not orphan adoption).
        self._pending_takeovers: dict[str, "GlobalTransaction"] = {}
        self._takeover_batches: dict[int, dict[str, "GlobalTransaction"]] = {}
        self._takeover_running: set[int] = set()
        self.crashes = 0
        self.failovers_started = 0
        self.takeovers_started = 0
        self.submissions_rerouted = 0
        for gtm in self.coordinators:
            gtm.pool = self

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def shard_of(self, gtxn_id: str, operations: list["Operation"]) -> int:
        """The home shard for a transaction (deterministic, seed-free)."""
        if self.routing == "affinity":
            gtm = self.coordinators[0]
            for operation in operations:
                routed = gtm.schema.route(operation)
                if routed.site is not None:
                    return zlib.crc32(routed.site.encode()) % len(self.coordinators)
        return zlib.crc32(gtxn_id.encode()) % len(self.coordinators)

    def submit(
        self,
        operations: list["Operation"],
        name: Optional[str] = None,
        intends_abort: bool = False,
    ) -> "Process":
        """Route one global transaction to its shard and run it.

        A crashed home shard is skipped: the submission fails over to
        the next live coordinator (counted in
        ``submissions_rerouted``).  With a single coordinator this is a
        plain pass-through -- the seed's exact path.
        """
        if len(self.coordinators) == 1:
            return self.coordinators[0].submit(
                operations, name=name, intends_abort=intends_abort
            )
        gtxn_id = name or f"G{next(self._ids)}"
        shard = self.shard_of(gtxn_id, operations)
        for probe in range(len(self.coordinators)):
            gtm = self.coordinators[(shard + probe) % len(self.coordinators)]
            if not gtm.crashed:
                if probe:
                    self.submissions_rerouted += 1
                return gtm.submit(
                    operations, name=gtxn_id, intends_abort=intends_abort
                )
        raise AllCoordinatorsDown(
            f"all {len(self.coordinators)} coordinators are crashed"
        )

    # ------------------------------------------------------------------
    # Shared views
    # ------------------------------------------------------------------

    def is_active(self, gtxn_id: str) -> bool:
        """Is any live coordinator (or a failover) driving ``gtxn_id``?

        Adopted orphans count as active too: a site-restart recovery
        sweep must not race the failover that is already resolving
        them.
        """
        for gtm in self.coordinators:
            if gtxn_id in gtm.active:
                return True
        if gtxn_id in self._pending_orphans:
            return True
        if gtxn_id in self._pending_takeovers:
            return True
        if any(gtxn_id in batch for batch in self._takeover_batches.values()):
            return True
        return any(gtxn_id in batch for batch in self._adoptions.values())

    def live_coordinator(self) -> "GlobalTransactionManager":
        """A live coordinator, preferring shard 0 (for recovery duty)."""
        for gtm in self.coordinators:
            if not gtm.crashed:
                return gtm
        raise AllCoordinatorsDown(
            f"all {len(self.coordinators)} coordinators are crashed"
        )

    def outcomes(self) -> list["GlobalOutcome"]:
        """Every shard's outcomes, in submission order per shard."""
        collected: list["GlobalOutcome"] = []
        for gtm in self.coordinators:
            collected.extend(gtm.outcomes)
        return collected

    def unresolved_orphans(self) -> list[str]:
        """In-doubt gtxn ids no failover has settled yet (audits)."""
        unresolved = sorted(self._pending_orphans)
        unresolved.extend(sorted(self._pending_takeovers))
        for batch in self._adoptions.values():
            unresolved.extend(sorted(batch))
        for batch in self._takeover_batches.values():
            unresolved.extend(sorted(batch))
        return unresolved

    # ------------------------------------------------------------------
    # Crash + failover
    # ------------------------------------------------------------------

    def crash(self, index: int) -> None:
        """Crash coordinator ``index``; a live peer adopts its orphans."""
        gtm = self.coordinators[index]
        if gtm.crashed:
            return
        self.crashes += 1
        # Capture in-flight transactions *before* interrupting their
        # processes: the interrupt runs each coordinator generator's
        # ``finally`` blocks, which pop ``gtm.active``.
        orphans: dict[str, "GlobalTransaction"] = dict(gtm.active)
        # An adoption (or takeover) this shard was running for an
        # earlier crash is itself orphaned now -- whatever it had not
        # settled yet.
        leftover = self._adoptions.pop(index, None)
        if leftover:
            orphans.update(leftover)
        self._adoption_running.discard(index)
        leftover = self._takeover_batches.pop(index, None)
        if leftover:
            orphans.update(leftover)
        self._takeover_running.discard(index)
        gtm.crashed = True
        if gtm.pipeline is not None:
            gtm.pipeline.crash()
        self.kernel.trace.emit(
            "coordinator_crash", gtm.name, gtm.name, inflight=len(orphans)
        )
        gtm.comm.node.crash()
        for process in list(gtm._inflight.values()):
            if not process.done:
                process.interrupt(cause=f"coordinator {gtm.name} crashed")
        gtm._inflight.clear()
        for process in gtm._service:
            if not process.done:
                process.interrupt(cause=f"coordinator {gtm.name} crashed")
        gtm._service.clear()
        if self._paxos_mode:
            # Paxos Commit: nobody adopts anything.  The undecided
            # transactions wait out the takeover timeout, then a live
            # peer finishes their consensus instances at a higher
            # ballot -- non-blocking by the acceptor majority.
            self._pending_takeovers.update(orphans)
            self._schedule_takeover()
        else:
            self._pending_orphans.update(orphans)
            self._start_failover()

    def restart(self, index: int) -> Generator[Any, Any, None]:
        """Restart coordinator ``index`` (a generator; spawn or yield from)."""
        gtm = self.coordinators[index]
        if not gtm.crashed:
            return
        yield from gtm.comm.node.restart()
        gtm.crashed = False
        gtm.comm.respawn()
        self.kernel.trace.emit("coordinator_restart", gtm.name, gtm.name)
        # Orphans stranded while every peer was down: the reborn
        # coordinator adopts (or, under paxos, takes over) them itself.
        self._start_failover()
        self._schedule_takeover()

    def _start_failover(self) -> None:
        """Hand all pending orphans to one live peer, if any exists."""
        if not self._pending_orphans:
            return
        adopter: Optional["GlobalTransactionManager"] = None
        for gtm in self.coordinators:
            if not gtm.crashed:
                adopter = gtm
                break
        if adopter is None:
            return  # total outage; the next restart re-triggers this
        batch = dict(self._pending_orphans)
        self._pending_orphans.clear()
        adopter_index = self.coordinators.index(adopter)
        existing = self._adoptions.setdefault(adopter_index, {})
        existing.update(batch)
        self.failovers_started += 1
        if adopter_index in self._adoption_running:
            # The adopter is already draining its batch (a double crash
            # of the same shard landed mid-adoption): the merge above
            # is enough -- a second adoption process would re-adopt and
            # redrive transactions the running one is still settling.
            return
        self._adoption_running.add(adopter_index)
        process = self.kernel.spawn(
            self._run_adoption(adopter, adopter_index),
            name=f"failover:{adopter.name}",
        )
        adopter.track_service(process)

    def _run_adoption(
        self, adopter: "GlobalTransactionManager", adopter_index: int
    ) -> Generator[Any, Any, None]:
        batch = self._adoptions.get(adopter_index)
        try:
            if not batch:
                return
            yield from adopter.recovery.adopt_orphans(batch)
        finally:
            self._adoption_running.discard(adopter_index)
            if not batch and self._adoptions.get(adopter_index) is batch:
                self._adoptions.pop(adopter_index, None)

    # ------------------------------------------------------------------
    # Paxos takeover (coordinator_mode == "paxos")
    # ------------------------------------------------------------------

    @property
    def _paxos_mode(self) -> bool:
        return self.coordinators[0].config.protocol == "paxos"

    def _schedule_takeover(self) -> None:
        """Arm the takeover timer for the pending undecided batch."""
        if not self._pending_takeovers:
            return
        timeout = self.coordinators[0].config.paxos_takeover_timeout
        self.kernel._schedule(timeout, self._takeover_due)

    def _takeover_due(self) -> None:
        """Timeout fired: hand the pending batch to one live peer."""
        if not self._pending_takeovers:
            return
        adopter: Optional["GlobalTransactionManager"] = None
        for gtm in self.coordinators:
            if not gtm.crashed:
                adopter = gtm
                break
        if adopter is None:
            return  # total outage; a restart re-arms the timer
        batch = dict(self._pending_takeovers)
        self._pending_takeovers.clear()
        adopter_index = self.coordinators.index(adopter)
        existing = self._takeover_batches.setdefault(adopter_index, {})
        existing.update(batch)
        self.takeovers_started += 1
        self.kernel.trace.emit(
            "paxos_takeover", adopter.name, adopter.name, batch=len(batch)
        )
        if adopter_index in self._takeover_running:
            return  # the running drain loop picks the merge up
        self._takeover_running.add(adopter_index)
        process = self.kernel.spawn(
            self._run_takeover(adopter, adopter_index),
            name=f"takeover:{adopter.name}",
        )
        adopter.track_service(process)

    def _run_takeover(
        self, adopter: "GlobalTransactionManager", adopter_index: int
    ) -> Generator[Any, Any, None]:
        batch = self._takeover_batches.get(adopter_index)
        try:
            while batch:
                if adopter.crashed:
                    return  # crash handling re-routes the leftover
                gtxn_id = min(batch)
                yield from adopter.recovery.takeover_paxos(batch[gtxn_id])
                batch.pop(gtxn_id, None)
        finally:
            self._takeover_running.discard(adopter_index)
            if not batch and self._takeover_batches.get(adopter_index) is batch:
                self._takeover_batches.pop(adopter_index, None)

    # ------------------------------------------------------------------

    def metrics(self) -> dict[str, Any]:
        """Pool-wide counters, shaped like one GTM's :meth:`metrics`.

        Per-coordinator counters are summed; the L1 and decision-log
        figures come from shard 0 because those components are shared
        (summing them would double-count).  With one coordinator this
        is exactly that coordinator's own metrics.
        """
        if len(self.coordinators) == 1:
            return self.coordinators[0].metrics()
        per_shard = [gtm.metrics() for gtm in self.coordinators]
        summed = (
            "global_committed", "global_aborted",
            "redo_executions", "undo_executions",
            "decision_groups", "decisions_grouped",
            "recovery_passes", "recovery_resolved_indoubt",
            "recovery_redriven_redos", "recovery_redriven_undos",
            "recovery_orphans_terminated",
        )
        merged: dict[str, Any] = {key: sum(m[key] for m in per_shard) for key in summed}
        for key in (
            "l1_waits", "l1_wait_time", "l1_hold_time", "l1_deadlocks",
            "decision_forces",
        ):
            merged[key] = per_shard[0][key]
        committed = [o for o in self.outcomes() if o.committed]
        merged["mean_response_time"] = (
            sum(o.response_time for o in committed) / len(committed)
            if committed
            else 0.0
        )
        merged["coordinator_crashes"] = self.crashes
        merged["failovers_started"] = self.failovers_started
        merged["submissions_rerouted"] = self.submissions_rerouted
        merged["unresolved_orphans"] = len(self.unresolved_orphans())
        return merged

    def __repr__(self) -> str:
        live = sum(1 for gtm in self.coordinators if not gtm.crashed)
        return (
            f"<CoordinatorPool n={len(self.coordinators)} live={live} "
            f"routing={self.routing}>"
        )
