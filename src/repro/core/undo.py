"""Undo machinery for the commit-before protocol (§3.3).

The *undo requirement*: locally committed subtransactions of a globally
aborted transaction must be undone by inverse transactions.  The
undo-log stores, per executed operation, the inverse action derived at
execution time (using the before-image the site returned) -- this is the
L1 undo-log that multi-level transactions maintain anyway, which is why
the protocol adds no overhead when combined with them (§4.3).

A committed inverse transaction puts the *local transaction* in its
aborted final state ("committing the undo means aborting the local
transaction", Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.mlt.actions import Operation


@dataclass
class UndoRecord:
    """Inverse action for one executed operation."""

    gtxn_id: str
    site: str
    sequence: int
    operation: Operation
    inverse: Optional[Operation]


@dataclass
class UndoLog:
    """Central (L1) undo-log, ordered by execution sequence."""

    records: list[UndoRecord] = field(default_factory=list)
    total_undos: int = 0

    def record(
        self,
        gtxn_id: str,
        site: str,
        operation: Operation,
        inverse: Optional[Operation],
    ) -> UndoRecord:
        entry = UndoRecord(gtxn_id, site, len(self.records), operation, inverse)
        self.records.append(entry)
        return entry

    def inverses_for(self, gtxn_id: str, site: Optional[str] = None) -> list[UndoRecord]:
        """Undo records of a global transaction, newest first.

        Reverse execution order is the correct undo order; with the
        semantic conflict table the order among commuting actions is
        immaterial, but reverse order is always safe.
        """
        selected = [
            record
            for record in self.records
            if record.gtxn_id == gtxn_id
            and record.inverse is not None
            and (site is None or record.site == site)
        ]
        return list(reversed(selected))

    def note_undo(self) -> None:
        self.total_undos += 1

    def forget(self, gtxn_id: str) -> None:
        """Drop records of a finished global transaction."""
        self.records = [r for r in self.records if r.gtxn_id != gtxn_id]


def optimize_inverses(records: list[UndoRecord]) -> list[Operation]:
    """Collapse an inverse-transaction's operation list.

    The paper defers this: "Optimizing the execution of inverse actions
    is not considered in this paper" (§4.1).  This implements the two
    safe collapses per object:

    * a run of increments nets out to a single increment of the negated
      sum (dropped entirely when it nets to zero);
    * a run of state-based operations (write/insert/delete) reduces to
      restoring the *oldest* before-image -- intermediate restorations
      are dead writes.

    Objects mixing increments with state-based operations keep their
    full reverse-order inverse sequence (collapsing across the boundary
    would not commute).  ``records`` must be in execution order for one
    (gtxn, site); the result preserves reverse order across objects.
    """
    by_object: dict[tuple[str, Any], list[UndoRecord]] = {}
    last_seen: dict[tuple[str, Any], int] = {}
    for record in records:
        if record.inverse is None:
            continue
        key = (record.operation.table, record.operation.key)
        by_object.setdefault(key, []).append(record)
        last_seen[key] = record.sequence

    collapsed: list[tuple[int, list[Operation]]] = []
    for key, object_records in by_object.items():
        kinds = {r.operation.kind for r in object_records}
        if kinds <= {"increment"}:
            net = sum(r.operation.value for r in object_records)
            ops = (
                [replace_value(object_records[0].inverse, -net)] if net else []
            )
        elif "increment" not in kinds:
            # Restore the state before the FIRST touch of the object.
            oldest = object_records[0]
            ops = [oldest.inverse]
        else:
            ops = [r.inverse for r in reversed(object_records)]
        if ops:
            collapsed.append((last_seen[key], ops))

    # Undo objects in reverse order of their last forward touch.
    collapsed.sort(key=lambda item: item[0], reverse=True)
    return [op for _, ops in collapsed for op in ops]


def replace_value(operation: Operation, value: Any) -> Operation:
    """An increment inverse with a different delta."""
    from dataclasses import replace

    return replace(operation, value=value)
