"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class.  Layer-specific bases
(:class:`SimulationError`, :class:`StorageError`, :class:`DatabaseError`,
:class:`NetworkError`, :class:`ProtocolError`) group the concrete errors
raised by the corresponding subpackages.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


# ---------------------------------------------------------------------------
# Simulation kernel
# ---------------------------------------------------------------------------


class SimulationError(ReproError):
    """Base class for errors raised by the discrete-event kernel."""


class ProcessInterrupted(SimulationError):
    """Raised inside a process when another process interrupts it.

    The ``cause`` attribute carries an arbitrary user supplied object
    describing why the interruption happened (for instance a
    :class:`~repro.localdb.txn.LocalAbortReason`).
    """

    def __init__(self, cause: object = None):
        super().__init__(f"process interrupted: {cause!r}")
        self.cause = cause


class KernelStopped(SimulationError):
    """Raised when an operation is attempted on a stopped kernel."""


# ---------------------------------------------------------------------------
# Storage substrate
# ---------------------------------------------------------------------------


class StorageError(ReproError):
    """Base class for storage-layer failures."""


class PageNotFound(StorageError):
    """A page identifier does not exist on the simulated disk."""


class BufferPoolFull(StorageError):
    """No frame can be evicted because every page is pinned."""


class LogCorruption(StorageError):
    """The write-ahead log contains an unreadable or truncated record."""


# ---------------------------------------------------------------------------
# Local database engine
# ---------------------------------------------------------------------------


class DatabaseError(ReproError):
    """Base class for local database engine failures."""


class UnknownTable(DatabaseError):
    """A table name is not present in the catalog."""


class DuplicateKey(DatabaseError):
    """An insert collided with an existing key."""


class KeyNotFound(DatabaseError):
    """A read, update or delete addressed a missing key."""


class TransactionAborted(DatabaseError):
    """The local transaction was aborted.

    The ``reason`` attribute is a :class:`~repro.localdb.txn.LocalAbortReason`
    explaining whether the abort was requested, caused by deadlock victim
    selection, a lock timeout, failed optimistic validation or a site crash.
    """

    def __init__(self, txn_id: str, reason: object):
        super().__init__(f"transaction {txn_id} aborted: {reason}")
        self.txn_id = txn_id
        self.reason = reason


class InvalidTransactionState(DatabaseError):
    """An operation was attempted in a transaction state that forbids it."""


class DeadlockDetected(DatabaseError):
    """The lock manager chose this transaction as a deadlock victim."""


class LockTimeout(DatabaseError):
    """A lock request waited longer than the configured timeout."""


class ValidationFailure(DatabaseError):
    """Optimistic concurrency control rejected the transaction at commit."""


class SiteCrashed(DatabaseError):
    """The site executing the request crashed before replying."""


# ---------------------------------------------------------------------------
# Network substrate
# ---------------------------------------------------------------------------


class NetworkError(ReproError):
    """Base class for communication failures."""


class MessageTimeout(NetworkError):
    """No reply arrived within the configured timeout."""


class NodeUnreachable(NetworkError):
    """The destination node is crashed or unknown."""


class TopologyViolation(NetworkError):
    """A message violated the star topology (local talking to local)."""


# ---------------------------------------------------------------------------
# Global transaction management / commit protocols
# ---------------------------------------------------------------------------


class ProtocolError(ReproError):
    """Base class for global transaction management failures."""


class GlobalAbort(ProtocolError):
    """The global transaction was aborted; ``reason`` says why."""

    def __init__(self, gtxn_id: str, reason: str):
        super().__init__(f"global transaction {gtxn_id} aborted: {reason}")
        self.gtxn_id = gtxn_id
        self.reason = reason


class AtomicityViolation(ProtocolError):
    """Subtransactions of one global transaction reached mixed outcomes.

    The protocols in this library are designed to make this impossible;
    the invariant checkers raise it when a bug or a deliberately broken
    configuration (used in experiments) lets it happen.
    """


class SerializabilityViolation(ProtocolError):
    """The serialization-graph checker found a cycle."""


class DurabilityOrderViolation(ProtocolError):
    """A participant ack was about to overtake the durable decision.

    Every commit path must make the decision durable (forced decision
    record, or a chosen Paxos value at a majority of acceptors) before
    any participant may learn it.  The pipelined decision path asserts
    this ordering and raises when a configuration would break it.
    """


class UnsupportedInterface(ProtocolError):
    """The protocol needs an interface feature the local TM lacks.

    Two-phase commit raises this when pointed at a standard
    begin/commit/abort interface without a ready state -- the central
    observation of the paper.
    """
