"""repro -- Atomic Commitment for Integrated Database Systems.

A faithful, executable reproduction of Muth & Rakow (ICDE 1991):
heterogeneous local database engines with unchangeable transaction
managers, a central global transaction manager, and the three atomic
commitment strategies the paper compares -- two-phase commit, local
commitment after the global decision, and local commitment before the
global decision combined with multi-level transactions.

Quickstart::

    from repro import Federation, FederationConfig, SiteSpec, GTMConfig, ops

    fed = Federation(
        [
            SiteSpec("bank_a", tables={"accounts": {"alice": 100}}),
            SiteSpec("bank_b", tables={"accounts_b": {"bob": 50}}),
        ],
        FederationConfig(gtm=GTMConfig(protocol="before")),
    )
    process = fed.submit([
        ops.increment("accounts", "alice", -10),
        ops.increment("accounts_b", "bob", +10),
    ])
    fed.run()
    print(process.value.committed)
"""

from repro import errors
from repro.core.global_txn import GlobalOutcome, GlobalTransaction, GlobalTxnState
from repro.core.gtm import GlobalTransactionManager, GTMConfig
from repro.integration.federation import Federation, FederationConfig, SiteSpec
from repro.localdb.config import LocalDBConfig
from repro.localdb.engine import LocalDatabase
from repro.mlt import actions as ops
from repro.mlt.actions import Operation
from repro.mlt.conflicts import READ_WRITE_TABLE, SEMANTIC_TABLE
from repro.sim.kernel import Kernel
from repro.storage.disk import StorageConfig

__version__ = "1.0.0"

__all__ = [
    "Federation",
    "FederationConfig",
    "GTMConfig",
    "GlobalOutcome",
    "GlobalTransaction",
    "GlobalTransactionManager",
    "GlobalTxnState",
    "Kernel",
    "LocalDBConfig",
    "LocalDatabase",
    "Operation",
    "READ_WRITE_TABLE",
    "SEMANTIC_TABLE",
    "SiteSpec",
    "StorageConfig",
    "errors",
    "ops",
]
