"""Placement model: namespaces, partitions and their site assignments.

A :class:`PlacementSpec` declares how one global table (a namespace) is
split into partitions and how wide each partition is replicated.  The
:class:`PlacementMap` materialises those declarations into
:class:`Partition` records -- the mutable unit of membership: a
partition knows its member sites (the first member is the primary), the
ex-members awaiting re-integration, and its *epoch*, which increments
on every membership change so stale routed requests can be fenced.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.errors import ReproError
from repro.storage.heap import _stable_hash


class PlacementError(ReproError):
    """A placement declaration is inconsistent or cannot be routed."""


class PlacementUnavailable(PlacementError):
    """Routing is temporarily impossible (frozen or memberless partition).

    Retriable by design: the GTM backs off and re-decomposes, picking
    up the post-rejoin (or post-promotion) membership and epoch.
    """

    def __init__(self, table: str, index: int, reason: str):
        super().__init__(f"partition {table}/p{index} unavailable: {reason}")
        self.table = table
        self.index = index
        self.reason = reason


class HashPartitioner:
    """Stable-hash partitioner (same digest as the heap's bucketing)."""

    kind = "hash"

    def __init__(self, partitions: int):
        self.partitions = partitions

    def partition_of(self, key: Any) -> int:
        return _stable_hash(key) % self.partitions


class RangePartitioner:
    """Key-range partitioner over sorted split points.

    ``boundaries`` are the upper-exclusive split keys: ``n`` boundaries
    yield ``n + 1`` partitions, keys below ``boundaries[0]`` landing in
    partition 0.
    """

    kind = "range"

    def __init__(self, boundaries: Sequence[Any]):
        self.boundaries = list(boundaries)
        if self.boundaries != sorted(self.boundaries):
            raise PlacementError(f"range boundaries not sorted: {boundaries!r}")
        self.partitions = len(self.boundaries) + 1

    def partition_of(self, key: Any) -> int:
        return bisect_right(self.boundaries, key)


@dataclass(frozen=True)
class PlacementSpec:
    """Declaration of one partitioned, partially replicated namespace.

    ``rows`` holds the table's initial global rows; the federation
    distributes them to the partition local tables at load time.
    ``sites`` restricts the candidate sites (default: every data site);
    members are assigned round-robin with chained declustering, so
    replication factor ``r`` places partition ``i`` on candidates
    ``i, i+1, ..., i+r-1`` (mod the candidate count).
    """

    table: str
    partitions: int = 4
    replication: int = 1
    partitioner: str = "hash"  # "hash" | "range"
    boundaries: tuple = ()
    sites: tuple = ()
    rows: dict = field(default_factory=dict)
    buckets: int = 8

    def __post_init__(self) -> None:
        if self.partitions < 1:
            raise PlacementError(f"partitions must be >= 1, got {self.partitions}")
        if self.replication < 1:
            raise PlacementError(f"replication must be >= 1, got {self.replication}")
        if self.partitioner not in ("hash", "range"):
            raise PlacementError(f"unknown partitioner {self.partitioner!r}")
        if self.partitioner == "range" and len(self.boundaries) != self.partitions - 1:
            raise PlacementError(
                f"range partitioner over {self.partitions} partitions needs "
                f"{self.partitions - 1} boundaries, got {len(self.boundaries)}"
            )

    def make_partitioner(self):
        if self.partitioner == "range":
            return RangePartitioner(self.boundaries)
        return HashPartitioner(self.partitions)


@dataclass
class Partition:
    """One partition's membership record.

    ``members[0]`` is the primary; replicas follow.  ``offline`` holds
    evicted ex-members awaiting rejoin (they resync before serving
    again).  ``epoch`` increments on every membership change, and
    ``frozen`` pauses routing during a rejoin handshake.
    """

    pid: int
    table: str
    index: int
    local_table: str
    members: list[str]
    epoch: int = 1
    offline: set[str] = field(default_factory=set)
    frozen: bool = False
    #: Set when the membership empties: the last-standing member, the
    #: only ex-member guaranteed to hold every committed write.  Only
    #: it may resume the partition alone; earlier-evicted returners
    #: wait for it and resync from it.
    resume_set: set[str] = field(default_factory=set)

    @property
    def primary(self) -> Optional[str]:
        return self.members[0] if self.members else None

    def __repr__(self) -> str:
        return (
            f"<Partition {self.table}/p{self.index} epoch={self.epoch} "
            f"members={self.members} offline={sorted(self.offline)}>"
        )


class PlacementMap:
    """All partitions of all placed namespaces, resolvable by key."""

    def __init__(self, specs: Sequence[PlacementSpec], site_names: Sequence[str]):
        self.specs = list(specs)
        self.partitions: list[Partition] = []
        self._by_table: dict[str, list[Partition]] = {}
        self._partitioners: dict[str, Any] = {}
        self._spec_by_table: dict[str, PlacementSpec] = {}
        for spec in self.specs:
            if spec.table in self._by_table:
                raise PlacementError(f"table {spec.table!r} placed twice")
            candidates = list(spec.sites) or list(site_names)
            if not candidates:
                raise PlacementError(f"no candidate sites for {spec.table!r}")
            if spec.replication > len(candidates):
                raise PlacementError(
                    f"replication {spec.replication} of {spec.table!r} exceeds "
                    f"{len(candidates)} candidate sites"
                )
            partitioner = spec.make_partitioner()
            self._partitioners[spec.table] = partitioner
            self._spec_by_table[spec.table] = spec
            table_partitions = []
            for index in range(spec.partitions):
                members = [
                    candidates[(index + offset) % len(candidates)]
                    for offset in range(spec.replication)
                ]
                partition = Partition(
                    pid=len(self.partitions),
                    table=spec.table,
                    index=index,
                    local_table=f"{spec.table}_p{index}",
                    members=members,
                )
                self.partitions.append(partition)
                table_partitions.append(partition)
            self._by_table[spec.table] = table_partitions

    # -- resolution --------------------------------------------------------

    def manages(self, table: str) -> bool:
        return table in self._by_table

    def partition_of(self, table: str, key: Any) -> Partition:
        partitions = self._by_table.get(table)
        if partitions is None:
            raise PlacementError(f"table {table!r} has no placement")
        return partitions[self._partitioners[table].partition_of(key)]

    def partition(self, pid: int) -> Partition:
        return self.partitions[pid]

    def table_partitions(self, table: str) -> list[Partition]:
        return list(self._by_table.get(table, ()))

    def partitions_for_site(self, site: str) -> list[Partition]:
        """Partitions whose membership involves ``site`` (incl. offline)."""
        return [
            p for p in self.partitions if site in p.members or site in p.offline
        ]

    def initial_rows(self, partition: Partition) -> dict:
        """The slice of the spec's initial rows landing in ``partition``."""
        spec = self._spec_by_table[partition.table]
        partitioner = self._partitioners[partition.table]
        return {
            key: value
            for key, value in spec.rows.items()
            if partitioner.partition_of(key) == partition.index
        }

    def spec_for(self, table: str) -> PlacementSpec:
        return self._spec_by_table[table]

    def __repr__(self) -> str:
        return f"<PlacementMap tables={sorted(self._by_table)} partitions={len(self.partitions)}>"
