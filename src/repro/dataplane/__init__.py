"""Data-plane sharding with partial replication.

The control plane scaled in PRs 4 and 7 (sharded coordinator pool,
Paxos Commit); this package scales the *data* plane.  A
:class:`PlacementMap` partitions each global table (a namespace) into
partitions via a key-range or hash partitioner and assigns every
partition a primary site plus an optional replica set -- partial
replication: a replica holds only the partitions it serves.  The
:class:`DataPlane` manager routes every sub-transaction action by
namespace at decompose time, fans writes out to the full replica set
(each replica is an ordinary participant site, so the existing atomic
commitment protocols give replica convergence for free), fences stale
epochs after a promotion, and re-integrates restarted replicas with a
freeze -> drain -> resync -> epoch-bump handshake.
"""

from repro.dataplane.manager import DataPlane
from repro.dataplane.placement import (
    HashPartitioner,
    Partition,
    PlacementError,
    PlacementMap,
    PlacementSpec,
    PlacementUnavailable,
    RangePartitioner,
)

__all__ = [
    "DataPlane",
    "HashPartitioner",
    "Partition",
    "PlacementError",
    "PlacementMap",
    "PlacementSpec",
    "PlacementUnavailable",
    "RangePartitioner",
]
