"""The data-plane manager: routing, promotion, fencing, rejoin.

One :class:`DataPlane` per federation, shared by every coordinator and
every site communication manager.  It is consulted at decompose time
(:meth:`routes` fans a write out to the full replica set, so each
replica becomes an ordinary participant of the commit protocol), on
site crashes (a lease timer drives deterministic promotion and an
epoch bump), on the execution path of every site (stale-epoch fencing),
and on restarts (freeze -> drain -> resync -> rejoin).

Liveness model: routing targets the member list, not instantaneous
node health.  Between a member's crash and its lease expiry, requests
to it time out and the GTM retries; once the lease fires the member is
evicted, the epoch increments, and the retry re-decomposes against the
new membership.  A restarting ex-member is resynchronised from the
current primary *after* global recovery settled its in-doubt locals,
under a frozen partition with no in-flight global transactions -- the
only window in which a byte-copy is sound.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.dataplane.placement import Partition, PlacementMap, PlacementUnavailable
from repro.errors import DatabaseError
from repro.mlt.actions import Operation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.integration.federation import Federation


class DataPlane:
    """Namespace routing and replica-set membership for one federation."""

    def __init__(
        self,
        federation: "Federation",
        placement_map: PlacementMap,
        lease_timeout: float = 40.0,
        drain_poll_interval: float = 5.0,
    ):
        self.federation = federation
        self.kernel = federation.kernel
        self.map = placement_map
        self.lease_timeout = lease_timeout
        self.drain_poll_interval = drain_poll_interval
        #: Reject executions stamped with a superseded epoch.  Disabled
        #: only by the ``stale_epoch`` checker mutant.
        self.fencing = True
        #: Wait out in-flight transactions before a rejoin resync.
        self.drain_on_rejoin = True
        #: Copy the primary's partition image onto a rejoining replica.
        self.resync_on_rejoin = True
        # Counters (surface in federation metrics and the obs registry).
        self.promotions = 0
        self.evictions = 0
        self.rejoins = 0
        self.resynced_keys = 0
        self.stale_rejections = 0
        self.unavailable_rejections = 0
        self.routed_reads = 0
        self.routed_writes = 0

    # ------------------------------------------------------------------
    # Routing (decompose time)
    # ------------------------------------------------------------------

    def manages(self, table: str) -> bool:
        return self.map.manages(table)

    def epoch_of(self, pid: int) -> int:
        return self.map.partition(pid).epoch

    def routes(self, operation: Operation) -> list[Operation]:
        """Bind one global operation to its partition's member sites.

        Reads go to the primary only; writes fan out to every member,
        each copy stamped with the partition id and current epoch so
        the sites can fence requests that outlive a membership change.
        """
        partition = self.map.partition_of(operation.table, operation.key)
        if partition.frozen:
            self.unavailable_rejections += 1
            raise PlacementUnavailable(
                partition.table, partition.index, "rejoin in progress"
            )
        if not partition.members:
            self.unavailable_rejections += 1
            raise PlacementUnavailable(
                partition.table, partition.index, "no serving member"
            )
        if not operation.writes:
            self.routed_reads += 1
            return [self._stamp(operation, partition, partition.members[0])]
        self.routed_writes += 1
        return [
            self._stamp(operation, partition, member)
            for member in partition.members
        ]

    @staticmethod
    def _stamp(operation: Operation, partition: Partition, site: str) -> Operation:
        return operation.placed(
            site, partition.local_table, partition.pid, partition.epoch
        )

    # ------------------------------------------------------------------
    # Promotion (lease-driven, deterministic)
    # ------------------------------------------------------------------

    def on_site_crash(self, site: str) -> None:
        """Arm one lease timer per membership of the crashed site."""
        for partition in self.map.partitions_for_site(site):
            if site not in partition.members:
                continue
            self.kernel.call_at(
                self.kernel.now + self.lease_timeout,
                self._lease_expired,
                partition.pid,
                site,
                partition.epoch,
            )

    def _lease_expired(self, pid: int, site: str, epoch: int) -> None:
        partition = self.map.partition(pid)
        if partition.epoch != epoch or site not in partition.members:
            return  # membership already changed under this lease
        node = self.federation.nodes.get(site)
        if node is not None and not node.crashed:
            return  # the site came back within its lease
        was_primary = partition.members[0] == site
        partition.members.remove(site)
        partition.offline.add(site)
        partition.epoch += 1
        # A promotion needs a successor: losing the only member is a
        # plain eviction (the partition waits, memberless, for rejoin).
        promoted = was_primary and bool(partition.members)
        if not partition.members:
            # The membership just emptied: this site held every commit
            # and is the only legitimate solo-resumer on restart.
            partition.resume_set = {site}
        if promoted:
            self.promotions += 1
        else:
            self.evictions += 1
        trace = self.kernel.trace
        if trace.enabled:
            trace.emit(
                "partition_promote" if promoted else "partition_evict",
                "central",
                f"{partition.table}/p{partition.index}",
                evicted=site,
                primary=partition.primary,
                epoch=partition.epoch,
            )
        coordinator = self._live_coordinator()
        if coordinator is not None:
            coordinator.recovery.note_promotion(
                site, partition.pid, partition.epoch, partition.primary
            )

    def _live_coordinator(self):
        from repro.core.pool import AllCoordinatorsDown

        try:
            return self.federation.pool.live_coordinator()
        except AllCoordinatorsDown:
            return None

    # ------------------------------------------------------------------
    # Rejoin (restart path: freeze -> drain -> resync -> epoch bump)
    # ------------------------------------------------------------------

    def rejoin(self, site: str) -> Generator[Any, Any, None]:
        """Re-integrate a restarted ex-member into its partitions.

        Runs after global recovery resolved the site's in-doubt locals,
        so the resync reconciles only *settled* state.
        """
        for partition in self.map.partitions_for_site(site):
            if site in partition.offline:
                yield from self._rejoin_partition(partition, site)

    def _rejoin_partition(
        self, partition: Partition, site: str
    ) -> Generator[Any, Any, None]:
        while True:
            if not partition.members:
                if site in partition.resume_set or not partition.resume_set:
                    # Every member went down; only the last-standing
                    # member -- which applied every commit -- may
                    # resume the partition alone.
                    partition.resume_set.clear()
                    break
                # An earlier-evicted returner may have missed commits
                # the last-standing member applied: wait for a
                # legitimate member to resume, then resync from it.
                yield self.drain_poll_interval
                continue
            partition.frozen = True
            try:
                if self.drain_on_rejoin:
                    yield from self._drain(partition.pid)
                # The surviving members can crash *during* the drain;
                # wait out a crashed primary's lease (its eviction
                # unblocks us one way or the other).
                while partition.members and self._primary_down(partition):
                    yield self.drain_poll_interval
                if not partition.members:
                    continue  # emptied under us: re-evaluate from the top
                if self.resync_on_rejoin:
                    try:
                        yield from self._resync(partition, site)
                    except DatabaseError:
                        # A crash interrupted the resync; the site
                        # stays offline and the next restart retries.
                        return
                break
            finally:
                partition.frozen = False
        partition.offline.discard(site)
        partition.members.append(site)
        partition.epoch += 1
        self.rejoins += 1
        self._trace_rejoin(partition, site)

    def _trace_rejoin(self, partition: Partition, site: str) -> None:
        trace = self.kernel.trace
        if trace.enabled:
            trace.emit(
                "partition_rejoin",
                "central",
                f"{partition.table}/p{partition.index}",
                joiner=site,
                epoch=partition.epoch,
            )

    def _primary_down(self, partition: Partition) -> bool:
        node = self.federation.nodes.get(partition.primary)
        return node is not None and node.crashed

    def _drain(self, pid: int) -> Generator[Any, Any, None]:
        """Wait until no coordinator is driving a transaction on ``pid``.

        Rejoin-time resyncs must not race an in-flight commit or an
        undo obligation bound to the old membership; new arrivals are
        held off by the frozen flag (they retry through the GTM).
        """
        while True:
            busy = any(
                pid in gtxn.partitions()
                for coordinator in self.federation.coordinators
                for gtxn in list(coordinator.active.values())
            )
            if not busy:
                return
            yield self.drain_poll_interval

    def _resync(self, partition: Partition, site: str) -> Generator[Any, Any, None]:
        """Reconcile the joiner's partition image with the primary's.

        The primary-side snapshot is a non-transactional page merge --
        sound because the partition is frozen and drained -- and the
        joiner-side fixup runs as one ordinary local transaction, so it
        is WAL-logged and survives later crashes of the joiner.
        """
        snapshot = self.table_records(partition.primary, partition.local_table)
        current = self.table_records(site, partition.local_table)
        engine = self.federation.engines[site]
        txn = engine.begin()
        changed = 0
        for key in current:
            if key not in snapshot:
                yield from engine.delete(txn, partition.local_table, key)
                changed += 1
        for key, value in snapshot.items():
            if key not in current:
                yield from engine.insert(txn, partition.local_table, key, value)
                changed += 1
            elif current[key] != value:
                yield from engine.write(txn, partition.local_table, key, value)
                changed += 1
        yield from engine.commit(txn)
        self.resynced_keys += changed

    def table_records(self, site: str, table: str) -> dict:
        """Current committed-ish records of one local table (peek-style).

        Prefers buffered page images, falling back to stable pages --
        the same view as :meth:`Federation.peek`, table-wide.
        """
        engine = self.federation.engines[site]
        heap = engine.catalog.heap(table)
        records: dict = {}
        for page_id in heap.page_ids:
            if engine.buffer.resident(page_id):
                records.update(engine.buffer._frames[page_id].records)
            else:
                page = engine.disk.stable_page(page_id)
                if page is not None:
                    records.update(page.records)
        return records

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def metrics(self) -> dict[str, Any]:
        return {
            "partitions": {
                f"{p.table}/p{p.index}": {
                    "epoch": p.epoch,
                    "primary": p.primary,
                    "members": list(p.members),
                    "offline": sorted(p.offline),
                }
                for p in self.map.partitions
            },
            "promotions": self.promotions,
            "evictions": self.evictions,
            "rejoins": self.rejoins,
            "resynced_keys": self.resynced_keys,
            "stale_rejections": self.stale_rejections,
            "unavailable_rejections": self.unavailable_rejections,
            "routed_reads": self.routed_reads,
            "routed_writes": self.routed_writes,
        }

    def __repr__(self) -> str:
        return (
            f"<DataPlane partitions={len(self.map.partitions)} "
            f"promotions={self.promotions} rejoins={self.rejoins}>"
        )
