"""Waits-for graph and cycle detection for the L0 lock manager."""

from __future__ import annotations

from typing import Hashable, Optional


class WaitsForGraph:
    """Tracks which transaction waits for which, per resource.

    Edges are stored keyed by ``(resource, waiter)`` so that a change to
    one resource's queue can be re-stated atomically without disturbing
    edges contributed by other resources.
    """

    def __init__(self) -> None:
        self._blockers: dict[tuple[Hashable, str], set[str]] = {}

    def set_blockers(self, resource: Hashable, waiter: str, blockers: set[str]) -> None:
        """Declare that ``waiter`` waits for ``blockers`` on ``resource``."""
        blockers = {b for b in blockers if b != waiter}
        if blockers:
            self._blockers[(resource, waiter)] = blockers
        else:
            self._blockers.pop((resource, waiter), None)

    def clear(self, resource: Hashable, waiter: str) -> None:
        """Remove the waiting edge of ``waiter`` on ``resource``."""
        self._blockers.pop((resource, waiter), None)

    def clear_txn(self, txn_id: str) -> None:
        """Remove every edge where ``txn_id`` is the waiter."""
        stale = [key for key in self._blockers if key[1] == txn_id]
        for key in stale:
            del self._blockers[key]

    def adjacency(self) -> dict[str, set[str]]:
        """Aggregate waiter -> blockers adjacency over all resources."""
        adjacency: dict[str, set[str]] = {}
        for (_resource, waiter), blockers in self._blockers.items():
            adjacency.setdefault(waiter, set()).update(blockers)
        return adjacency

    def find_cycle_from(self, start: str) -> Optional[list[str]]:
        """Return a cycle through ``start`` if one exists, else ``None``.

        Iterative DFS; deterministic because neighbours are visited in
        sorted order.
        """
        adjacency = self.adjacency()
        path: list[str] = []
        on_path: set[str] = set()
        visited: set[str] = set()

        def dfs(node: str) -> Optional[list[str]]:
            path.append(node)
            on_path.add(node)
            for neighbour in sorted(adjacency.get(node, ())):
                if neighbour == start:
                    return path + [start]
                if neighbour in on_path or neighbour in visited:
                    continue
                cycle = dfs(neighbour)
                if cycle is not None:
                    return cycle
            on_path.discard(node)
            visited.add(node)
            path.pop()
            return None

        return dfs(start)

    def __len__(self) -> int:
        return len(self._blockers)

    def __repr__(self) -> str:
        return f"<WaitsForGraph edges={len(self._blockers)}>"
