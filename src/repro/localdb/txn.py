"""Local transaction objects and their state machine.

The states mirror the paper's Figures 2/4/6 for the *local* side:
``RUNNING`` -> (``READY`` ->)? ``COMMITTED`` | ``ABORTED``.  The ready
state exists only when the transaction was created through a
*preparable* (modified) interface; the standard interface performs the
running -> committed transition atomically, which is exactly why 2PC is
impossible over it.
"""

from __future__ import annotations

import enum
from typing import Any, Optional


class LocalTxnState(enum.Enum):
    """Lifecycle states of a local transaction."""

    RUNNING = "running"
    READY = "ready"
    COMMITTED = "committed"
    ABORTED = "aborted"


class LocalAbortReason(enum.Enum):
    """Why a local transaction aborted.

    ``REQUESTED`` is an *intended* abort (the transaction's own logic or
    the global decision); everything else is an *erroneous* abort in the
    paper's sense -- the local system acted autonomously after the
    communication manager already answered ``ready``.
    """

    REQUESTED = "requested"
    DEADLOCK = "deadlock"
    TIMEOUT = "timeout"
    VALIDATION = "validation"
    CRASH = "crash"
    SYSTEM = "system"
    #: Short-Commit dirty-read guard: the reader consumed values a
    #: downgraded (exposed) transaction then rolled back.
    CASCADE = "cascade"

    @property
    def erroneous(self) -> bool:
        """True for aborts the local system decided on its own."""
        return self is not LocalAbortReason.REQUESTED


class LocalTransaction:
    """Bookkeeping for one transaction inside a local engine."""

    __slots__ = (
        "txn_id",
        "state",
        "start_time",
        "end_time",
        "first_lsn",
        "last_lsn",
        "abort_reason",
        "read_set",
        "write_set",
        "workspace",
        "start_commit_seq",
        "gtxn_id",
        "ops_executed",
        "finishing",
    )

    def __init__(self, txn_id: str, start_time: float, start_commit_seq: int = 0):
        self.txn_id = txn_id
        self.state = LocalTxnState.RUNNING
        self.start_time = start_time
        self.end_time: Optional[float] = None
        # LSN of the begin record: log truncation must not pass the
        # oldest active transaction's first record (its undo chain).
        self.first_lsn = 0
        self.last_lsn = 0
        self.abort_reason: Optional[LocalAbortReason] = None
        # (table, key) sets, used by the optimistic scheduler's validation.
        self.read_set: set[tuple[str, Any]] = set()
        self.write_set: set[tuple[str, Any]] = set()
        # Deferred writes of the optimistic scheduler:
        # (table, key) -> ("write"|"delete", value).
        self.workspace: dict[tuple[str, Any], tuple[str, Any]] = {}
        self.start_commit_seq = start_commit_seq
        # Global transaction this local one belongs to (None for purely
        # local work); used for tracing and the serializability checker.
        self.gtxn_id: Optional[str] = None
        self.ops_executed = 0
        # Set while the commit record is being forced, so concurrent
        # force-abort attempts back off from a transaction that is
        # already past the point of no return.
        self.finishing = False

    @property
    def active(self) -> bool:
        return self.state in (LocalTxnState.RUNNING, LocalTxnState.READY)

    def require_state(self, *states: LocalTxnState) -> None:
        """Raise unless the transaction is in one of ``states``."""
        if self.state not in states:
            from repro.errors import InvalidTransactionState

            allowed = "/".join(s.value for s in states)
            raise InvalidTransactionState(
                f"{self.txn_id} is {self.state.value}, needs {allowed}"
            )

    def __repr__(self) -> str:
        return f"<LocalTransaction {self.txn_id} {self.state.value}>"
