"""Configuration of a local database engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.storage.disk import StorageConfig


@dataclass
class LocalDBConfig:
    """Tunables of one site's engine.

    Attributes
    ----------
    scheduler:
        ``"2pl"`` for strict two-phase locking, ``"occ"`` for optimistic
        (backward-validation) concurrency control.  The paper's §3.2
        explicitly considers locals "aborted by an optimistic scheduler
        since the transaction did not survive the validation phase".
    lock_timeout:
        Maximum simulated time a lock request may wait before the
        transaction aborts with a timeout -- one of the paper's sources
        of *erroneous* local aborts.  ``None`` disables timeouts.
    deadlock_detection:
        Detect waits-for cycles on every block and abort the requester.
    buffer_capacity:
        Buffer-pool frames.
    default_buckets:
        Pages per table unless overridden at ``create_table``.
    """

    storage: StorageConfig = field(default_factory=StorageConfig)
    scheduler: str = "2pl"
    lock_timeout: Optional[float] = 50.0
    deadlock_detection: bool = True
    buffer_capacity: int = 64
    default_buckets: int = 8
    #: Group-commit gathering window (0 = force immediately).  A
    #: positive window trades commit latency for fewer forced writes
    #: when commits arrive concurrently.
    group_commit_window: float = 0.0

    def __post_init__(self) -> None:
        if self.scheduler not in ("2pl", "occ"):
            raise ValueError(f"unknown scheduler {self.scheduler!r}")
