"""Durable table catalog of a local database.

Table definitions (name, page range, pinned key placements) are stored
in the stable disk's metadata area so they survive crashes; the heap
files themselves are rebuilt from the catalog at restart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import UnknownTable
from repro.storage.heap import HeapFile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.storage.buffer import BufferPool
    from repro.storage.disk import StableDisk


@dataclass
class TableDef:
    """Durable description of one table."""

    name: str
    first_page_id: int
    bucket_count: int
    pinned_keys: dict[Any, int] = field(default_factory=dict)  # key -> bucket


class Catalog:
    """Maps table names to heap files; persists definitions to disk."""

    _META_KEY = "catalog"

    def __init__(self, disk: "StableDisk"):
        self._disk = disk
        self._tables: dict[str, TableDef] = {}
        self._heaps: dict[str, HeapFile] = {}
        self._next_page_id = 0

    # -- definition ------------------------------------------------------------

    def define(self, name: str, bucket_count: int) -> TableDef:
        """Register a new table and persist the definition."""
        if name in self._tables:
            raise ValueError(f"table {name!r} already exists")
        definition = TableDef(name, self._next_page_id, bucket_count)
        self._next_page_id += bucket_count
        self._tables[name] = definition
        self._persist()
        return definition

    def pin_key(self, table: str, key: Any, bucket_index: int) -> None:
        """Pin ``key`` to a bucket (Figure 8 style page co-location)."""
        definition = self._definition(table)
        definition.pinned_keys[key] = bucket_index
        self.heap(table).pin_key_to_page(key, bucket_index)
        self._persist()

    def _persist(self) -> None:
        self._disk.set_meta(
            self._META_KEY,
            {
                name: (d.first_page_id, d.bucket_count, dict(d.pinned_keys))
                for name, d in self._tables.items()
            },
        )

    # -- access ----------------------------------------------------------------

    def _definition(self, table: str) -> TableDef:
        if table not in self._tables:
            raise UnknownTable(table)
        return self._tables[table]

    def heap(self, table: str) -> HeapFile:
        if table not in self._heaps:
            raise UnknownTable(table)
        return self._heaps[table]

    def attach_heap(self, table: str, heap: HeapFile) -> None:
        definition = self._definition(table)
        for key, bucket in definition.pinned_keys.items():
            heap.pin_key_to_page(key, bucket)
        self._heaps[table] = heap

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def definitions(self) -> list[TableDef]:
        return [self._tables[name] for name in self.table_names()]

    # -- crash recovery ----------------------------------------------------------

    def reload(self, buffer_pool: "BufferPool") -> None:
        """Rebuild table definitions and heap files after a crash."""
        stored = self._disk.get_meta(self._META_KEY, {})
        self._tables = {}
        self._heaps = {}
        self._next_page_id = 0
        for name, (first_page_id, bucket_count, pinned) in stored.items():
            definition = TableDef(name, first_page_id, bucket_count, dict(pinned))
            self._tables[name] = definition
            self._next_page_id = max(self._next_page_id, first_page_id + bucket_count)
            heap = HeapFile(name, self._disk, buffer_pool, first_page_id, bucket_count)
            self.attach_heap(name, heap)

    def __contains__(self, table: str) -> bool:
        return table in self._tables

    def __repr__(self) -> str:
        return f"<Catalog tables={self.table_names()}>"
