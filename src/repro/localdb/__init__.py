"""A complete single-site database engine.

Each *existing database system* of the paper's Figure 1 is one
:class:`~repro.localdb.engine.LocalDatabase`: heap storage, a strict
two-phase-locking (or optimistic) scheduler, WAL-based recovery, and a
transaction manager exposed through either

* :class:`~repro.localdb.interface.StandardTMInterface` -- the
  *unchangeable* ``begin`` / ``commit`` / ``abort`` interface the paper
  assumes (no ready state!), or
* :class:`~repro.localdb.interface.PreparableTMInterface` -- a *modified*
  manager that additionally offers ``prepare``, used only by the
  two-phase-commit baseline.
"""

from repro.localdb.config import LocalDBConfig
from repro.localdb.engine import LocalDatabase
from repro.localdb.interface import PreparableTMInterface, StandardTMInterface
from repro.localdb.locks import LockManager, LockMode
from repro.localdb.txn import LocalAbortReason, LocalTransaction, LocalTxnState

__all__ = [
    "LocalAbortReason",
    "LocalDBConfig",
    "LocalDatabase",
    "LocalTransaction",
    "LocalTxnState",
    "LockManager",
    "LockMode",
    "PreparableTMInterface",
    "StandardTMInterface",
]
