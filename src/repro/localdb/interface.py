"""Transaction-manager interfaces, the paper's key abstraction boundary.

:class:`StandardTMInterface` is the interface of an *unchangeable
existing* transaction manager: ``begin``, data operations, ``commit``,
``abort``.  There is **no ready state** -- the running -> committed
transition is atomic -- so two-phase commit cannot be driven through it
(:meth:`StandardTMInterface.prepare` raises
:class:`~repro.errors.UnsupportedInterface`).

:class:`PreparableTMInterface` models a *modified* transaction manager
that also offers ``prepare``; it exists only so the 2PC baseline of the
experiments has something to run against.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.errors import UnsupportedInterface
from repro.localdb.txn import LocalAbortReason, LocalTxnState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.localdb.engine import LocalDatabase


class StandardTMInterface:
    """``begin`` / operations / ``commit`` / ``abort`` -- nothing more.

    Transactions are addressed by opaque string ids, as a foreign
    client (the communication manager) would see them.
    """

    has_prepare = False

    def __init__(self, engine: "LocalDatabase"):
        self._engine = engine

    @property
    def site(self) -> str:
        return self._engine.site

    # -- lifecycle -----------------------------------------------------------

    def begin(self, gtxn_id: Optional[str] = None) -> str:
        """Start a transaction; returns its id."""
        return self._engine.begin(gtxn_id=gtxn_id).txn_id

    def commit(self, txn_id: str) -> Generator[Any, Any, None]:
        """Atomic running -> committed transition (forces the log)."""
        yield from self._engine.commit(self._engine.txn(txn_id))

    def abort(self, txn_id: str) -> Generator[Any, Any, None]:
        """Intended abort requested by the client."""
        yield from self._engine.abort(
            self._engine.txn(txn_id), LocalAbortReason.REQUESTED
        )

    def prepare(self, txn_id: str) -> Generator[Any, Any, None]:
        """Standard managers have no ready state (the paper's premise)."""
        raise UnsupportedInterface(
            f"{self.site}: existing transaction manager has no ready state"
        )
        yield  # pragma: no cover - keeps this a generator function

    # -- data operations -------------------------------------------------------

    def read(self, txn_id: str, table: str, key: Any) -> Generator[Any, Any, Any]:
        value = yield from self._engine.read(self._engine.txn(txn_id), table, key)
        return value

    def write(
        self, txn_id: str, table: str, key: Any, value: Any
    ) -> Generator[Any, Any, None]:
        yield from self._engine.write(self._engine.txn(txn_id), table, key, value)

    def insert(
        self, txn_id: str, table: str, key: Any, value: Any
    ) -> Generator[Any, Any, None]:
        yield from self._engine.insert(self._engine.txn(txn_id), table, key, value)

    def delete(self, txn_id: str, table: str, key: Any) -> Generator[Any, Any, None]:
        yield from self._engine.delete(self._engine.txn(txn_id), table, key)

    def increment(
        self, txn_id: str, table: str, key: Any, delta: Any
    ) -> Generator[Any, Any, Any]:
        value = yield from self._engine.increment(
            self._engine.txn(txn_id), table, key, delta
        )
        return value

    def scan(self, txn_id: str, table: str) -> Generator[Any, Any, list]:
        rows = yield from self._engine.scan(self._engine.txn(txn_id), table)
        return rows

    # -- status ------------------------------------------------------------------

    def status(self, txn_id: str) -> Optional[LocalTxnState]:
        """Volatile status: ``None`` if this manager forgot the id (crash)."""
        try:
            return self._engine.txn(txn_id).state
        except Exception:
            return None

    def durable_outcome(self, txn_id: str) -> Optional[str]:
        """Outcome per the stable log; models an in-database commit log."""
        return self._engine.stable_outcome(txn_id)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.site}>"


class PreparableTMInterface(StandardTMInterface):
    """A *modified* manager exposing a ready state, for the 2PC baseline."""

    has_prepare = True

    def prepare(self, txn_id: str) -> Generator[Any, Any, None]:
        """running -> ready: force the log, keep all locks."""
        yield from self._engine.prepare(self._engine.txn(txn_id))

    def short_release(self, txn_id: str, downgrade: bool = True) -> list:
        """Short-Commit early lock release on a *ready* transaction.

        Releases read locks and downgrades write locks (releases them
        with ``downgrade=False`` -- the seeded mutant).  Immediate: a
        pure lock-table operation, no log I/O.
        """
        return self._engine.short_release(self._engine.txn(txn_id), downgrade=downgrade)
