"""The local database engine.

One :class:`LocalDatabase` models one *existing database system* of the
paper's architecture: heap storage behind a buffer pool, a write-ahead
log, a pluggable scheduler (strict 2PL or optimistic backward
validation), WAL-based crash recovery and autonomous abort behaviour
(deadlock victims, lock timeouts, validation failures, injected system
aborts, crashes) -- the exact sources of *erroneous* local aborts that
drive the paper's §3.2 analysis.

All data operations are generators and must be driven with
``yield from`` inside a simulation process; they consume simulated CPU
and I/O time and may block on locks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.errors import (
    DeadlockDetected,
    DuplicateKey,
    InvalidTransactionState,
    KeyNotFound,
    LockTimeout,
    SiteCrashed,
    TransactionAborted,
)
from repro.localdb.catalog import Catalog
from repro.localdb.config import LocalDBConfig
from repro.localdb.locks import LockManager, LockMode
from repro.localdb.txn import LocalAbortReason, LocalTransaction, LocalTxnState
from repro.sim.sync import FifoLock
from repro.storage.buffer import BufferPool
from repro.storage.disk import StableDisk
from repro.storage.wal import (
    AbortRecord,
    BeginRecord,
    CheckpointRecord,
    CommitRecord,
    CompensationRecord,
    LogManager,
    PrepareRecord,
    UpdateRecord,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Kernel
    from repro.sim.process import Process


@dataclass(frozen=True)
class OpRecord:
    """One executed data operation, for the serializability checker."""

    seq: int
    txn_id: str
    gtxn_id: Optional[str]
    kind: str  # "read" | "write" | "increment" | "insert" | "delete"
    table: str
    key: Any

    @property
    def writes(self) -> bool:
        return self.kind != "read"


class LocalDatabase:
    """A complete single-site database system."""

    def __init__(self, kernel: "Kernel", site: str, config: Optional[LocalDBConfig] = None):
        self.kernel = kernel
        self.site = site
        self.config = config or LocalDBConfig()
        self.disk = StableDisk(kernel, site, self.config.storage)
        self.log = LogManager(
            self.disk,
            kernel=kernel,
            group_commit_window=self.config.group_commit_window,
        )
        self.buffer = BufferPool(self.disk, self.log, self.config.buffer_capacity)
        self.locks = LockManager(
            kernel,
            site,
            default_timeout=self.config.lock_timeout,
            deadlock_detection=self.config.deadlock_detection,
        )
        self.catalog = Catalog(self.disk)
        self.crashed = False
        self._txns: dict[str, LocalTransaction] = {}
        self._txn_counter = 0
        # Optimistic scheduler state.
        self._commit_seq = 0
        self._occ_committed: list[tuple[int, frozenset[tuple[str, Any]]]] = []
        self._occ_gate = FifoLock(name=f"{site}:occ-commit")
        # Committed-projection history for the serializability checker.
        self._op_seq = 0
        self.op_history: list[OpRecord] = []
        self.committed_txn_ids: set[str] = set()
        # Short-Commit exposure state: a prepared transaction that
        # downgraded its write locks has *exposed* uncommitted values.
        # Readers of exposed pages pick up a commit dependency and are
        # cascade-aborted if the exposer rolls back.
        self._exposed: dict[str, set[Any]] = {}  # exposer txn -> resources
        self._exposed_pages: dict[Any, str] = {}  # resource -> exposer txn
        self._commit_deps: dict[str, set[str]] = {}  # reader -> exposers
        self._dependents: dict[str, set[str]] = {}  # exposer -> readers
        # Rollbacks that restored a before-image over a value some other
        # transaction wrote in the meantime -- impossible while write
        # locks are held (or merely downgraded) to the end, so any entry
        # is a §3.3 dirty-write hazard; the invariant battery flags them.
        self.undo_clobbers: list[tuple[str, str, Any]] = []
        # Metrics.
        self.commits = 0
        self.aborts: dict[LocalAbortReason, int] = {r: 0 for r in LocalAbortReason}
        self.ops = 0
        self.crashes = 0
        self.checkpoints = 0

    # ------------------------------------------------------------------
    # Schema
    # ------------------------------------------------------------------

    def create_table(
        self, name: str, bucket_count: Optional[int] = None
    ) -> Generator[Any, Any, None]:
        """Create a table and initialize its pages on stable storage."""
        from repro.storage.heap import HeapFile

        buckets = bucket_count or self.config.default_buckets
        definition = self.catalog.define(name, buckets)
        heap = HeapFile(name, self.disk, self.buffer, definition.first_page_id, buckets)
        self.catalog.attach_heap(name, heap)
        yield from heap.initialize()

    def pin_key(self, table: str, key: Any, bucket_index: int) -> None:
        """Co-locate ``key`` on a chosen page (Figure 8 setups)."""
        self.catalog.pin_key(table, key, bucket_index)

    # ------------------------------------------------------------------
    # Transaction lifecycle
    # ------------------------------------------------------------------

    def begin(self, gtxn_id: Optional[str] = None) -> LocalTransaction:
        """Start a transaction (immediate; no I/O)."""
        if self.crashed:
            raise SiteCrashed(f"{self.site} is down")
        self._txn_counter += 1
        txn_id = f"{self.site}:t{self._txn_counter}"
        txn = LocalTransaction(txn_id, self.kernel.now, start_commit_seq=self._commit_seq)
        txn.gtxn_id = gtxn_id
        self._txns[txn_id] = txn
        if self.config.scheduler == "2pl":
            record = self.log.append(
                lambda lsn: BeginRecord(lsn=lsn, txn_id=txn_id, prev_lsn=0)
            )
            txn.first_lsn = record.lsn
            txn.last_lsn = record.lsn
        self._trace_state(txn)
        return txn

    def txn(self, txn_id: str) -> LocalTransaction:
        if txn_id not in self._txns:
            raise InvalidTransactionState(f"unknown transaction {txn_id}")
        return self._txns[txn_id]

    def active_txns(self) -> list[LocalTransaction]:
        return [t for t in self._txns.values() if t.active]

    def find_by_gtxn(self, gtxn_id: str) -> Optional[LocalTransaction]:
        """Latest local transaction belonging to ``gtxn_id``, if any."""
        found = None
        for txn in self._txns.values():
            if txn.gtxn_id == gtxn_id:
                found = txn
        return found

    # ------------------------------------------------------------------
    # Data operations
    # ------------------------------------------------------------------

    def read(self, txn: LocalTransaction, table: str, key: Any) -> Generator[Any, Any, Any]:
        """Return the value under ``key`` or ``None`` if absent."""
        yield from self._pre_op(txn)
        if self.config.scheduler == "occ":
            value = yield from self._occ_read(txn, table, key)
        else:
            heap = self.catalog.heap(table)
            page_id = heap.page_of(key)
            yield from self._acquire(txn, table, page_id, LockMode.SHARED)
            if self._exposed_pages:
                self._note_dirty_read(txn, (table, page_id))
            value = yield from heap.read(key)
            self._check_txn(txn)
        txn.read_set.add((table, key))
        self._record_op(txn, "read", table, key)
        return value

    def write(
        self, txn: LocalTransaction, table: str, key: Any, value: Any
    ) -> Generator[Any, Any, None]:
        """Insert-or-overwrite ``key`` with ``value``."""
        yield from self._pre_op(txn)
        if self.config.scheduler == "occ":
            txn.workspace[(table, key)] = ("write", value)
            txn.write_set.add((table, key))
            return
        yield from self._apply_write(txn, "write", table, key, value)

    def insert(
        self, txn: LocalTransaction, table: str, key: Any, value: Any
    ) -> Generator[Any, Any, None]:
        """Insert ``key``; raises :class:`DuplicateKey` if present."""
        yield from self._pre_op(txn)
        exists = yield from self._current_exists(txn, table, key)
        if exists:
            raise DuplicateKey(f"{table}[{key!r}]")
        if self.config.scheduler == "occ":
            txn.workspace[(table, key)] = ("write", value)
            txn.write_set.add((table, key))
            return
        yield from self._apply_write(txn, "insert", table, key, value)

    def delete(self, txn: LocalTransaction, table: str, key: Any) -> Generator[Any, Any, None]:
        """Delete ``key``; raises :class:`KeyNotFound` if absent."""
        yield from self._pre_op(txn)
        exists = yield from self._current_exists(txn, table, key)
        if not exists:
            raise KeyNotFound(f"{table}[{key!r}]")
        if self.config.scheduler == "occ":
            txn.workspace[(table, key)] = ("delete", None)
            txn.write_set.add((table, key))
            return
        yield from self._apply_write(txn, "delete", table, key, None)

    def increment(
        self, txn: LocalTransaction, table: str, key: Any, delta: Any
    ) -> Generator[Any, Any, Any]:
        """Add ``delta`` to a numeric value; returns the new value.

        At this level (L0) an increment is a read-modify-write and
        conflicts like a write; the commutativity is exploited one level
        up, by the L1 conflict table of :mod:`repro.mlt`.
        """
        yield from self._pre_op(txn)
        if self.config.scheduler == "occ":
            before = yield from self._occ_read(txn, table, key)
            txn.read_set.add((table, key))
            if before is None:
                raise KeyNotFound(f"{table}[{key!r}]")
            txn.workspace[(table, key)] = ("write", before + delta)
            txn.write_set.add((table, key))
            self._record_op(txn, "increment", table, key)
            return before + delta
        heap = self.catalog.heap(table)
        yield from self._acquire(txn, table, heap.page_of(key), LockMode.EXCLUSIVE)
        before = yield from heap.read(key)
        self._check_txn(txn)
        if before is None:
            raise KeyNotFound(f"{table}[{key!r}]")
        after = before + delta
        record = self._log_update(txn, table, key, before, after, heap.page_of(key))
        yield from heap.write(key, after, record.lsn)
        self._check_txn(txn)
        txn.write_set.add((table, key))
        self._record_op(txn, "increment", table, key)
        return after

    def scan(self, txn: LocalTransaction, table: str) -> Generator[Any, Any, list]:
        """All committed (key, value) pairs of ``table`` (S-locks all pages)."""
        yield from self._pre_op(txn)
        heap = self.catalog.heap(table)
        if self.config.scheduler == "2pl":
            for page_id in heap.page_ids:
                yield from self._acquire(txn, table, page_id, LockMode.SHARED)
                if self._exposed_pages:
                    self._note_dirty_read(txn, (table, page_id))
        rows = yield from heap.scan()
        self._check_txn(txn)
        if self.config.scheduler == "occ":
            overlay = {
                key: op for (tbl, key), op in txn.workspace.items() if tbl == table
            }
            merged = {k: v for k, v in rows}
            for key, (kind, value) in overlay.items():
                if kind == "delete":
                    merged.pop(key, None)
                else:
                    merged[key] = value
            rows = sorted(merged.items(), key=lambda kv: repr(kv[0]))
            for key, _value in rows:
                txn.read_set.add((table, key))
        return rows

    # ------------------------------------------------------------------
    # Commit / abort / prepare
    # ------------------------------------------------------------------

    def commit(self, txn: LocalTransaction) -> Generator[Any, Any, None]:
        """Commit: force the commit record, then release locks.

        With the standard interface this transition is atomic from the
        caller's perspective -- there is no externally visible state
        between *running* and *committed*, which is precisely why plain
        2PC cannot be layered on top of it.
        """
        self._check_txn(txn)
        txn.require_state(LocalTxnState.RUNNING, LocalTxnState.READY)
        yield self.config.storage.cpu_op_time
        self._check_txn(txn)
        while self._commit_deps.get(txn.txn_id):
            # Short-Commit dirty-read guard: this transaction read
            # values exposed by a prepared-but-unresolved transaction.
            # Committing now would make a dirty read durable, so wait
            # until every exposer resolved (its commit clears the
            # dependency; its abort cascade-aborts us).
            yield 1.0
            self._check_txn(txn)
        if self.config.scheduler == "occ" and txn.state is LocalTxnState.RUNNING:
            yield from self._occ_commit(txn)
            return
        txn.finishing = True
        record = self.log.append(
            lambda lsn: CommitRecord(lsn=lsn, txn_id=txn.txn_id, prev_lsn=txn.last_lsn)
        )
        txn.last_lsn = record.lsn
        yield from self.log.force(record.lsn)
        if self.crashed:
            # The force rode a group window that a crash emptied; the
            # commit record never reached stable storage.
            raise TransactionAborted(txn.txn_id, LocalAbortReason.CRASH)
        self._finalize_commit(txn)

    def abort(
        self,
        txn: LocalTransaction,
        reason: LocalAbortReason = LocalAbortReason.REQUESTED,
    ) -> Generator[Any, Any, None]:
        """Roll back and release (intended abort unless stated otherwise)."""
        self._check_txn(txn)
        txn.require_state(LocalTxnState.RUNNING, LocalTxnState.READY)
        yield from self._rollback(txn, reason)

    def prepare(self, txn: LocalTransaction) -> Generator[Any, Any, None]:
        """Enter the ready state (modified TMs only; see interface module)."""
        self._check_txn(txn)
        txn.require_state(LocalTxnState.RUNNING)
        while self._commit_deps.get(txn.txn_id):
            # Short-Commit dirty-read guard, prepare half: voting yes
            # with an unresolved exposer would let the coordinator
            # commit a dirty read (the ready state is a promise not to
            # abort, but the exposer's rollback must still cascade
            # here).  Hold the vote until every exposer resolved.
            yield 1.0
            self._check_txn(txn)
        if self.config.scheduler == "occ":
            # A preparable OCC engine validates at prepare time and
            # installs its workspace under commit locks, deferring only
            # the final commit record.
            yield from self._occ_install(txn)
        record = self.log.append(
            lambda lsn: PrepareRecord(
                lsn=lsn, txn_id=txn.txn_id, prev_lsn=txn.last_lsn, gtxn_id=txn.gtxn_id
            )
        )
        txn.last_lsn = record.lsn
        yield from self.log.force(record.lsn)
        self._check_txn(txn)
        txn.state = LocalTxnState.READY
        self._trace_state(txn)

    def short_release(self, txn: LocalTransaction, downgrade: bool = True) -> list:
        """Short-Commit early release on a *ready* transaction.

        Read locks are released; write locks are downgraded to shared
        (``downgrade=False`` -- the seeded mutant -- releases them
        too).  Pages whose exclusive lock was given up while this
        transaction's writes are uncommitted become exposed: readers
        that touch them pick up a commit dependency and are
        cascade-aborted if this transaction rolls back.  Immediate (no
        I/O): pure lock-table work.
        """
        self._check_txn(txn)
        txn.require_state(LocalTxnState.READY)
        exposed = self.locks.short_release(txn.txn_id, downgrade=downgrade)
        if exposed:
            self._exposed[txn.txn_id] = set(exposed)
            for resource in exposed:
                self._exposed_pages[resource] = txn.txn_id
        return exposed

    def force_abort(self, txn_id: str, reason: LocalAbortReason) -> "Process":
        """Asynchronously abort a transaction from outside its process.

        Used by the fault injector ("system abort") and by commit
        protocols reacting to the global decision.  Returns the spawned
        rollback process.  No-op (returns a finished process) when the
        transaction is already finishing or terminated.
        """
        txn = self._txns.get(txn_id)

        def _noop() -> Generator[Any, Any, None]:
            return
            yield  # pragma: no cover - makes this a generator

        if txn is None or not txn.active or txn.finishing:
            return self.kernel.spawn(_noop(), name=f"abort-noop:{txn_id}")
        self.locks.cancel_wait(txn_id, TransactionAborted(txn_id, reason))

        def _do_abort() -> Generator[Any, Any, None]:
            if txn.active and not txn.finishing:
                yield from self._rollback(txn, reason)

        return self.kernel.spawn(_do_abort(), name=f"force-abort:{txn_id}")

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def checkpoint(self) -> Generator[Any, Any, int]:
        """Sharp checkpoint: flush dirty pages, then truncate the log.

        Every page effect up to now becomes durable, so the stable log
        only needs to reach back to the oldest *active* transaction's
        begin record (its undo chain).  Returns the number of stable
        log records dropped.
        """
        yield from self.buffer.flush_all()
        active = {t.txn_id: t.last_lsn for t in self._txns.values() if t.active}
        record = self.log.append(
            lambda lsn: CheckpointRecord(
                lsn=lsn, txn_id="", prev_lsn=0, active_txns=active
            )
        )
        yield from self.log.force(record.lsn)
        candidates = [
            t.first_lsn
            for t in self._txns.values()
            if t.active and t.first_lsn > 0
        ]
        # Pages dirtied while (or after) we flushed still need their
        # redo records: never truncate past the oldest recovery LSN.
        min_dirty = self.buffer.min_rec_lsn()
        if min_dirty is not None:
            candidates.append(max(1, min_dirty))
        candidates.append(record.lsn)
        safe_lsn = min(candidates)
        dropped = self.log.truncate_stable(safe_lsn)
        self.checkpoints += 1
        self.kernel.trace.emit(
            "checkpoint", self.site, f"lsn{record.lsn}",
            safe_lsn=safe_lsn, dropped=dropped,
        )
        return dropped

    def start_checkpointing(self, interval: float) -> "Process":
        """Spawn a background process taking periodic checkpoints."""

        def checkpointer() -> Generator[Any, Any, None]:
            while True:
                yield interval
                if not self.crashed:
                    yield from self.checkpoint()

        return self.kernel.spawn(checkpointer(), name=f"checkpointer:{self.site}")

    # ------------------------------------------------------------------
    # Crash / restart
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Lose all volatile state instantly (the site fails)."""
        if self.crashed:
            return
        self.crashed = True
        self.crashes += 1
        self.disk.crash_epoch += 1
        for txn in self._txns.values():
            if txn.active:
                txn.state = LocalTxnState.ABORTED
                txn.abort_reason = LocalAbortReason.CRASH
                txn.end_time = self.kernel.now
                self.aborts[LocalAbortReason.CRASH] += 1
                self._trace_state(txn)
        self.locks.crash()
        self.buffer.crash()
        self.log.crash()
        self._exposed.clear()
        self._exposed_pages.clear()
        self._commit_deps.clear()
        self._dependents.clear()
        self._occ_gate.reset(SiteCrashed(f"{self.site} crashed"))
        self.kernel.trace.emit("site", self.site, "crash")

    def restart(self) -> Generator[Any, Any, None]:
        """Recover from stable storage and come back up."""
        from repro.localdb.recovery import recover

        if not self.crashed:
            raise InvalidTransactionState(f"{self.site} is not crashed")
        self.locks = LockManager(
            self.kernel,
            self.site,
            default_timeout=self.config.lock_timeout,
            deadlock_detection=self.config.deadlock_detection,
        )
        self.buffer = BufferPool(self.disk, self.log, self.config.buffer_capacity)
        self.log.rebuild_after_crash()
        self.catalog.reload(self.buffer)
        self._txns = {t.txn_id: t for t in self._txns.values() if not t.active}
        self._occ_gate = FifoLock(name=f"{self.site}:occ-commit")
        yield from recover(self)
        self.crashed = False
        self.kernel.trace.emit("site", self.site, "restart")

    # ------------------------------------------------------------------
    # Durable outcome lookup (for communication managers)
    # ------------------------------------------------------------------

    def stable_outcome(self, txn_id: str) -> Optional[str]:
        """``"committed"``/``"aborted"`` per the stable log, else ``None``.

        This models a commit-log the local system keeps *inside* its
        database ([WV 90]); the unreliable alternative -- volatile
        memory of the communication manager -- is exercised by
        experiment EXP-A2.
        """
        outcome = None
        for record in self.disk.stable_log():
            if record.txn_id != txn_id:
                continue
            if isinstance(record, CommitRecord):
                outcome = "committed"
            elif isinstance(record, AbortRecord):
                outcome = "aborted"
        return outcome

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    def metrics(self) -> dict[str, Any]:
        """Snapshot of this site's counters."""
        return {
            "site": self.site,
            "commits": self.commits,
            "aborts": {r.value: n for r, n in self.aborts.items() if n},
            "ops": self.ops,
            "crashes": self.crashes,
            "lock_waits": self.locks.waits,
            "lock_wait_time": self.locks.total_wait_time,
            "lock_hold_time": self.locks.total_hold_time,
            "lock_exclusive_hold_time": self.locks.total_exclusive_hold_time,
            "lock_downgrades": self.locks.downgrades,
            "deadlocks": self.locks.deadlocks,
            "lock_timeouts": self.locks.timeouts,
            "log_forces": self.disk.log_forces,
            "log_records": self.log.appended,
            "page_reads": self.disk.page_reads,
            "page_writes": self.disk.page_writes,
            "buffer_hits": self.buffer.hits,
            "buffer_misses": self.buffer.misses,
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _pre_op(self, txn: LocalTransaction) -> Generator[Any, Any, None]:
        self._check_txn(txn)
        txn.require_state(LocalTxnState.RUNNING)
        self.ops += 1
        txn.ops_executed += 1
        yield self.config.storage.cpu_op_time
        self._check_txn(txn)

    def _check_txn(self, txn: LocalTransaction) -> None:
        if txn.state is LocalTxnState.ABORTED:
            raise TransactionAborted(txn.txn_id, txn.abort_reason)
        if self.crashed:
            raise SiteCrashed(f"{self.site} is down")

    def _acquire(
        self, txn: LocalTransaction, table: str, page_id: int, mode: LockMode
    ) -> Generator[Any, Any, None]:
        """Lock with automatic rollback on deadlock/timeout."""
        try:
            yield from self.locks.acquire(txn.txn_id, (table, page_id), mode)
        except DeadlockDetected as exc:
            yield from self._rollback(txn, LocalAbortReason.DEADLOCK)
            raise TransactionAborted(txn.txn_id, LocalAbortReason.DEADLOCK) from exc
        except LockTimeout as exc:
            yield from self._rollback(txn, LocalAbortReason.TIMEOUT)
            raise TransactionAborted(txn.txn_id, LocalAbortReason.TIMEOUT) from exc
        self._check_txn(txn)

    def _current_exists(
        self, txn: LocalTransaction, table: str, key: Any
    ) -> Generator[Any, Any, bool]:
        """Does ``key`` exist from this transaction's point of view?"""
        if self.config.scheduler == "occ":
            if (table, key) in txn.workspace:
                kind, _value = txn.workspace[(table, key)]
                return kind != "delete"
            txn.read_set.add((table, key))
            heap = self.catalog.heap(table)
            exists = yield from heap.exists(key)
            self._check_txn(txn)
            return exists
        heap = self.catalog.heap(table)
        yield from self._acquire(txn, table, heap.page_of(key), LockMode.EXCLUSIVE)
        exists = yield from heap.exists(key)
        self._check_txn(txn)
        return exists

    def _apply_write(
        self,
        txn: LocalTransaction,
        kind: str,
        table: str,
        key: Any,
        value: Any,
    ) -> Generator[Any, Any, None]:
        """2PL write path: lock, log (WAL), apply."""
        heap = self.catalog.heap(table)
        page_id = heap.page_of(key)
        yield from self._acquire(txn, table, page_id, LockMode.EXCLUSIVE)
        before = yield from heap.read(key)
        self._check_txn(txn)
        after = None if kind == "delete" else value
        record = self._log_update(txn, table, key, before, after, page_id)
        if kind == "delete":
            yield from heap.delete(key, record.lsn)
        else:
            yield from heap.write(key, value, record.lsn)
        self._check_txn(txn)
        txn.write_set.add((table, key))
        self._record_op(txn, kind, table, key)

    def _log_update(
        self,
        txn: LocalTransaction,
        table: str,
        key: Any,
        before: Any,
        after: Any,
        page_id: int,
    ) -> UpdateRecord:
        record = self.log.append(
            lambda lsn: UpdateRecord(
                lsn=lsn,
                txn_id=txn.txn_id,
                prev_lsn=txn.last_lsn,
                table=table,
                key=key,
                before=before,
                after=after,
                page_id=page_id,
            )
        )
        txn.last_lsn = record.lsn
        return record

    def _record_op(self, txn: LocalTransaction, kind: str, table: str, key: Any) -> None:
        self._op_seq += 1
        self.op_history.append(
            OpRecord(self._op_seq, txn.txn_id, txn.gtxn_id, kind, table, key)
        )

    def _note_dirty_read(self, txn: LocalTransaction, resource: Any) -> None:
        """Record a read of an exposed page (Short-Commit guard)."""
        exposer = self._exposed_pages.get(resource)
        if exposer is None or exposer == txn.txn_id:
            return
        self._commit_deps.setdefault(txn.txn_id, set()).add(exposer)
        self._dependents.setdefault(exposer, set()).add(txn.txn_id)

    def _resolve_exposure(self, txn: LocalTransaction, aborted: bool) -> None:
        """An exposed transaction reached its final state.

        On commit the dependent readers' dirty reads retroactively
        became clean and their commits may proceed.  On abort every
        *active* dependent reader consumed values that never existed:
        cascade-abort them (retriable at the global layer).
        """
        exposed = self._exposed.pop(txn.txn_id, None)
        if exposed is None:
            return
        for resource in exposed:
            if self._exposed_pages.get(resource) == txn.txn_id:
                del self._exposed_pages[resource]
        for reader_id in sorted(self._dependents.pop(txn.txn_id, ())):
            deps = self._commit_deps.get(reader_id)
            if deps is not None:
                deps.discard(txn.txn_id)
                if not deps:
                    del self._commit_deps[reader_id]
            if aborted:
                self.force_abort(reader_id, LocalAbortReason.CASCADE)

    def _finalize_commit(self, txn: LocalTransaction) -> None:
        txn.state = LocalTxnState.COMMITTED
        txn.end_time = self.kernel.now
        if self._exposed:
            self._resolve_exposure(txn, aborted=False)
        self.locks.release_all(txn.txn_id)
        self.commits += 1
        self.committed_txn_ids.add(txn.txn_id)
        self._trace_state(txn)

    def _rollback(
        self, txn: LocalTransaction, reason: LocalAbortReason
    ) -> Generator[Any, Any, None]:
        """Undo (2PL) or discard (OCC), then release everything."""
        if txn.finishing or not txn.active:
            return
        txn.finishing = True
        # A pending lock request of this transaction (an operation still
        # in flight elsewhere) must never be granted post-mortem.
        self.locks.cancel_wait(txn.txn_id, TransactionAborted(txn.txn_id, reason))
        if self.config.scheduler == "occ":
            txn.workspace.clear()
        else:
            yield from self._undo_chain(txn)
            record = self.log.append(
                lambda lsn: AbortRecord(lsn=lsn, txn_id=txn.txn_id, prev_lsn=txn.last_lsn)
            )
            txn.last_lsn = record.lsn
        txn.state = LocalTxnState.ABORTED
        txn.abort_reason = reason
        txn.end_time = self.kernel.now
        if self._exposed:
            # The before-images above were restored under this
            # transaction's still-held (downgraded) shared locks, so no
            # committed writer effect was clobbered; readers that saw
            # the exposed values are cascade-aborted now.
            self._resolve_exposure(txn, aborted=True)
        self.locks.release_all(txn.txn_id)
        self.aborts[reason] += 1
        self._trace_state(txn)

    def _undo_chain(self, txn: LocalTransaction) -> Generator[Any, Any, None]:
        """Walk the transaction's log chain backwards applying before images."""
        lsn = txn.last_lsn
        while lsn > 0:
            record = self.log.record_at(lsn)
            if isinstance(record, UpdateRecord):
                heap = self.catalog.heap(record.table)
                if self.buffer.resident(record.page_id):
                    current = self.buffer._frames[record.page_id].get(record.key)
                    if current != record.after:
                        # A foreign write landed after ours: restoring the
                        # before-image erases that concurrent effect.
                        self.undo_clobbers.append(
                            (txn.txn_id, record.table, record.key)
                        )
                        self.kernel.trace.emit(
                            "undo_clobber", self.site, txn.txn_id,
                            table=record.table, key=record.key,
                        )
                clr = self.log.append(
                    lambda l, r=record: CompensationRecord(
                        lsn=l,
                        txn_id=txn.txn_id,
                        prev_lsn=txn.last_lsn,
                        table=r.table,
                        key=r.key,
                        after=r.before,
                        page_id=r.page_id,
                        undo_of_lsn=r.lsn,
                        undo_next_lsn=r.prev_lsn,
                    )
                )
                txn.last_lsn = clr.lsn
                if record.before is None:
                    yield from heap.delete(record.key, clr.lsn)
                else:
                    yield from heap.write(record.key, record.before, clr.lsn)
                lsn = record.prev_lsn
            elif isinstance(record, CompensationRecord):
                lsn = record.undo_next_lsn
            else:
                lsn = record.prev_lsn

    # -- optimistic scheduler ------------------------------------------------

    def _occ_read(
        self, txn: LocalTransaction, table: str, key: Any
    ) -> Generator[Any, Any, Any]:
        if (table, key) in txn.workspace:
            kind, value = txn.workspace[(table, key)]
            return None if kind == "delete" else value
        heap = self.catalog.heap(table)
        value = yield from heap.read(key)
        self._check_txn(txn)
        return value

    def _occ_commit(self, txn: LocalTransaction) -> Generator[Any, Any, None]:
        yield from self._occ_install(txn)
        txn.finishing = True
        record = self.log.append(
            lambda lsn: CommitRecord(lsn=lsn, txn_id=txn.txn_id, prev_lsn=txn.last_lsn)
        )
        txn.last_lsn = record.lsn
        yield from self.log.force(record.lsn)
        self._finalize_commit(txn)

    def _occ_install(self, txn: LocalTransaction) -> Generator[Any, Any, None]:
        """Validate and install the workspace (critical section)."""
        yield from self._occ_gate.acquire()
        released = False
        try:
            self._check_txn(txn)
            conflicts = {
                key
                for seq, writes in self._occ_committed
                if seq > txn.start_commit_seq
                for key in writes & txn.read_set
            }
            if conflicts:
                self._occ_gate.release()
                released = True
                yield from self._rollback(txn, LocalAbortReason.VALIDATION)
                raise TransactionAborted(txn.txn_id, LocalAbortReason.VALIDATION)
            if txn.workspace:
                record = self.log.append(
                    lambda lsn: BeginRecord(lsn=lsn, txn_id=txn.txn_id, prev_lsn=0)
                )
                txn.last_lsn = record.lsn
                for (table, key), (kind, value) in list(txn.workspace.items()):
                    heap = self.catalog.heap(table)
                    page_id = heap.page_of(key)
                    before = yield from heap.read(key)
                    self._check_txn(txn)
                    after = None if kind == "delete" else value
                    update = self._log_update(txn, table, key, before, after, page_id)
                    if kind == "delete":
                        yield from heap.delete(key, update.lsn)
                    else:
                        yield from heap.write(key, value, update.lsn)
                    self._check_txn(txn)
                    self._record_op(txn, kind, table, key)
            self._commit_seq += 1
            if txn.write_set:
                self._occ_committed.append((self._commit_seq, frozenset(txn.write_set)))
        finally:
            # On a crash the gate was already reset; do not double-release.
            if not released and not self.crashed:
                self._occ_gate.release()

    def _trace_state(self, txn: LocalTransaction) -> None:
        if not self.kernel.trace.enabled:
            return  # skip building the details dict entirely
        details: dict[str, Any] = {"state": txn.state.value}
        if txn.gtxn_id:
            details["gtxn"] = txn.gtxn_id
        if txn.abort_reason is not None:
            details["reason"] = txn.abort_reason.value
        self.kernel.trace.emit("txn_state", self.site, txn.txn_id, **details)

    def __repr__(self) -> str:
        status = "crashed" if self.crashed else "up"
        return f"<LocalDatabase {self.site} {status} txns={len(self._txns)}>"
