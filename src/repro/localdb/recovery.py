"""ARIES-style crash recovery for a local database.

Three passes over the stable log:

1. *Analysis* -- find losers (begun, never ended) and in-doubt
   transactions (prepared, never ended).
2. *Redo* -- repeat history: reapply every update/CLR whose LSN is newer
   than the page's LSN.
3. *Undo* -- roll back losers with compensation records; in-doubt
   transactions are **not** undone: they are reinstated in the ready
   state with their exclusive locks, awaiting the global decision (only
   preparable engines ever have them).

Recovery is idempotent: running it twice leaves the same state, which a
property-based test verifies.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.localdb.locks import LockMode
from repro.localdb.txn import LocalTransaction, LocalTxnState
from repro.storage.wal import (
    AbortRecord,
    BeginRecord,
    CommitRecord,
    CompensationRecord,
    PrepareRecord,
    UpdateRecord,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.localdb.engine import LocalDatabase


def recover(engine: "LocalDatabase") -> Generator[Any, Any, dict]:
    """Run analysis/redo/undo; returns a summary dict for tests."""
    stable = engine.disk.stable_log()
    last_lsn, losers, in_doubt = _analysis(stable)
    redone = yield from _redo(engine, stable)
    undone = yield from _undo(engine, stable, losers, last_lsn)
    yield from engine.log.force()
    reinstated = yield from _reinstate_in_doubt(engine, stable, in_doubt, last_lsn)
    return {
        "losers": sorted(losers),
        "in_doubt": sorted(in_doubt),
        "redone": redone,
        "undone": undone,
        "reinstated": reinstated,
    }


def _analysis(stable: list) -> tuple[dict[str, int], set[str], set[str]]:
    """Determine each transaction's last LSN and final disposition."""
    last_lsn: dict[str, int] = {}
    started: set[str] = set()
    prepared: set[str] = set()
    ended: set[str] = set()
    for record in stable:
        last_lsn[record.txn_id] = record.lsn
        if isinstance(record, BeginRecord):
            started.add(record.txn_id)
        elif isinstance(record, PrepareRecord):
            prepared.add(record.txn_id)
        elif isinstance(record, (CommitRecord, AbortRecord)):
            ended.add(record.txn_id)
    losers = started - prepared - ended
    in_doubt = prepared - ended
    return last_lsn, losers, in_doubt


def _redo(engine: "LocalDatabase", stable: list) -> Generator[Any, Any, int]:
    """Repeat history for every update and compensation record."""
    redone = 0
    for record in stable:
        if not isinstance(record, (UpdateRecord, CompensationRecord)):
            continue
        if record.table not in engine.catalog:
            continue
        heap = engine.catalog.heap(record.table)
        page = yield from engine.buffer.fetch(record.page_id)
        if page.page_lsn >= record.lsn:
            continue  # effect already on the stable page image
        if record.after is None:
            yield from heap.delete(record.key, record.lsn)
        else:
            yield from heap.write(record.key, record.after, record.lsn)
        redone += 1
    return redone


def _undo(
    engine: "LocalDatabase",
    stable: list,
    losers: set[str],
    last_lsn: dict[str, int],
) -> Generator[Any, Any, int]:
    """Roll back losers, writing CLRs, then an abort record each."""
    by_lsn = {record.lsn: record for record in stable}
    undone = 0
    for txn_id in sorted(losers):
        chain_lsn = last_lsn[txn_id]
        undo_point = chain_lsn
        while chain_lsn > 0:
            record = by_lsn.get(chain_lsn)
            if record is None:
                break  # chain reaches into the lost volatile tail
            if isinstance(record, UpdateRecord):
                heap = engine.catalog.heap(record.table)
                clr = engine.log.append(
                    lambda lsn, r=record, p=undo_point: CompensationRecord(
                        lsn=lsn,
                        txn_id=txn_id,
                        prev_lsn=p,
                        table=r.table,
                        key=r.key,
                        after=r.before,
                        page_id=r.page_id,
                        undo_of_lsn=r.lsn,
                        undo_next_lsn=r.prev_lsn,
                    )
                )
                undo_point = clr.lsn
                if record.before is None:
                    yield from heap.delete(record.key, clr.lsn)
                else:
                    yield from heap.write(record.key, record.before, clr.lsn)
                undone += 1
                chain_lsn = record.prev_lsn
            elif isinstance(record, CompensationRecord):
                chain_lsn = record.undo_next_lsn
            else:
                chain_lsn = record.prev_lsn
        engine.log.append(
            lambda lsn, p=undo_point: AbortRecord(lsn=lsn, txn_id=txn_id, prev_lsn=p)
        )
    return undone


def _reinstate_in_doubt(
    engine: "LocalDatabase",
    stable: list,
    in_doubt: set[str],
    last_lsn: dict[str, int],
) -> Generator[Any, Any, list[str]]:
    """Rebuild ready-state transactions and re-acquire their locks."""
    reinstated = []
    for txn_id in sorted(in_doubt):
        txn = LocalTransaction(txn_id, engine.kernel.now)
        txn.state = LocalTxnState.READY
        txn.last_lsn = last_lsn[txn_id]
        for record in stable:
            if isinstance(record, PrepareRecord) and record.txn_id == txn_id:
                txn.gtxn_id = record.gtxn_id
        for record in stable:
            if isinstance(record, UpdateRecord) and record.txn_id == txn_id:
                txn.write_set.add((record.table, record.key))
                yield from engine.locks.acquire(
                    txn_id, (record.table, record.page_id), LockMode.EXCLUSIVE
                )
        engine._txns[txn_id] = txn
        reinstated.append(txn_id)
        engine.kernel.trace.emit(
            "txn_state", engine.site, txn_id, state="ready", recovered=True
        )
    return reinstated
