"""Strict two-phase-locking lock manager (level L0).

Page-granularity shared/exclusive locks with FIFO queueing, upgrade
support, waits-for deadlock detection (requester aborts) and optional
wait timeouts.  Lock waits, hold times and grants are counted so the
experiments can report the paper's central quantity: how long L0 locks
are held under each commit protocol.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import TYPE_CHECKING, Any, Generator, Hashable, Optional

from repro.errors import DeadlockDetected, LockTimeout, SiteCrashed
from repro.localdb.deadlock import WaitsForGraph
from repro.sim.events import AnyOf, Future

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Kernel


class LockMode(enum.Enum):
    """L0 lock modes (the L1 semantic modes live in :mod:`repro.mlt`)."""

    SHARED = "S"
    EXCLUSIVE = "X"


def compatible(a: LockMode, b: LockMode) -> bool:
    """Two L0 modes are compatible only if both are shared."""
    return a is LockMode.SHARED and b is LockMode.SHARED


class _Request:
    __slots__ = ("txn_id", "mode", "future", "request_time", "grant_time", "upgrade")

    def __init__(self, txn_id: str, mode: LockMode, request_time: float, upgrade: bool):
        self.txn_id = txn_id
        self.mode = mode
        self.future: Optional[Future] = None
        self.request_time = request_time
        self.grant_time: Optional[float] = None
        self.upgrade = upgrade


class _ResourceState:
    __slots__ = ("resource", "serial", "holders", "waiters")

    def __init__(self, resource: Hashable, serial: int) -> None:
        self.resource = resource
        # Creation order of this incarnation of the resource entry;
        # release_all uses it to visit a transaction's resources in
        # lock-table order without scanning the whole table.
        self.serial = serial
        self.holders: dict[str, _Request] = {}
        self.waiters: deque[_Request] = deque()


class LockManager:
    """Lock table for one site."""

    def __init__(
        self,
        kernel: "Kernel",
        site: str,
        default_timeout: Optional[float] = None,
        deadlock_detection: bool = True,
    ):
        self._kernel = kernel
        self.site = site
        self.default_timeout = default_timeout
        self.deadlock_detection = deadlock_detection
        self._resources: dict[Hashable, _ResourceState] = {}
        self._state_serial = 0
        # txn_id -> resources it holds (an ordered set).  Turns the
        # release_all table scan into a direct lookup; kept in sync by
        # _grant / release_all / crash.
        self._held: dict[str, dict[Hashable, None]] = {}
        self._graph = WaitsForGraph()
        # Metrics.
        self.grants = 0
        self.waits = 0
        self.releases = 0
        self.downgrades = 0
        self.total_wait_time = 0.0
        self.total_hold_time = 0.0
        self.max_hold_time = 0.0
        # Exclusive holds are what block other work; Short-Commit's
        # early downgrade shows up here, not in the total.
        self.total_exclusive_hold_time = 0.0
        self.deadlocks = 0
        self.timeouts = 0
        # Observability hook: called as ``hold_observer(resource, hold)``
        # on every release.  ``None`` (the default) keeps the release
        # path at a single attribute test -- the TraceLog.enabled idiom.
        self.hold_observer: Optional[Any] = None

    # -- queries -----------------------------------------------------------

    def holders_of(self, resource: Hashable) -> dict[str, LockMode]:
        state = self._resources.get(resource)
        if state is None:
            return {}
        return {txn: req.mode for txn, req in state.holders.items()}

    def holds(self, txn_id: str, resource: Hashable, mode: LockMode) -> bool:
        """Does ``txn_id`` hold a lock at least as strong as ``mode``?"""
        state = self._resources.get(resource)
        if state is None or txn_id not in state.holders:
            return False
        held = state.holders[txn_id].mode
        return held is LockMode.EXCLUSIVE or mode is LockMode.SHARED

    def locks_held_by(self, txn_id: str) -> list[Hashable]:
        return [
            resource
            for resource, state in self._resources.items()
            if txn_id in state.holders
        ]

    # -- acquisition ---------------------------------------------------------

    def acquire(
        self,
        txn_id: str,
        resource: Hashable,
        mode: LockMode,
        timeout: Optional[float] = None,
    ) -> Generator[Any, Any, None]:
        """Acquire ``mode`` on ``resource`` for ``txn_id``, blocking.

        Raises :class:`DeadlockDetected` if the request closes a
        waits-for cycle (the requester is the victim) and
        :class:`LockTimeout` if the wait exceeds the timeout.
        """
        if timeout is None:
            timeout = self.default_timeout
        state = self._resources.get(resource)
        if state is None:
            self._state_serial += 1
            state = self._resources[resource] = _ResourceState(
                resource, self._state_serial
            )
        held = state.holders.get(txn_id)
        if held is not None:
            if held.mode is LockMode.EXCLUSIVE or mode is LockMode.SHARED:
                return  # already sufficient
            request = _Request(txn_id, mode, self._kernel.now, upgrade=True)
            if len(state.holders) == 1:
                # Sole holder: upgrade in place, ahead of any waiters.
                held.mode = LockMode.EXCLUSIVE
                self.grants += 1
                return
            state.waiters.appendleft(request)  # upgrades go first
        else:
            request = _Request(txn_id, mode, self._kernel.now, upgrade=False)
            if not state.waiters and self._grantable(state, request):
                self._grant(state, request)
                return
            state.waiters.append(request)

        self._restate_blockers(resource)
        if self.deadlock_detection:
            cycle = self._graph.find_cycle_from(txn_id)
            if cycle is not None:
                self._remove_waiter(resource, request)
                self.deadlocks += 1
                raise DeadlockDetected(
                    f"{self.site}: {txn_id} in cycle {' -> '.join(cycle)}"
                )

        request.future = Future(label=f"lock:{self.site}:{resource}:{txn_id}")
        self.waits += 1
        yield from self._wait(resource, request, timeout)
        self.total_wait_time += self._kernel.now - request.request_time

    def _wait(
        self, resource: Hashable, request: _Request, timeout: Optional[float]
    ) -> Generator[Any, Any, None]:
        assert request.future is not None
        if timeout is None:
            yield request.future
            return
        timer = self._kernel.timer(timeout, label="lock-timeout")
        index, _value = yield AnyOf([request.future, timer])
        if index == 0:
            return
        # Timer fired first -- but the grant may have landed at the very
        # same instant; treat that as a successful acquisition.
        if request.grant_time is not None:
            return
        self._remove_waiter(resource, request)
        self.timeouts += 1
        raise LockTimeout(f"{self.site}: {request.txn_id} on {resource}")

    def cancel_wait(self, txn_id: str, exc: BaseException) -> None:
        """Abort any pending wait of ``txn_id`` by failing its future."""
        for resource, state in self._resources.items():
            for request in list(state.waiters):
                if request.txn_id == txn_id and request.future is not None:
                    self._remove_waiter(resource, request, dispatch=True)
                    request.future.fail(exc)

    # -- release ---------------------------------------------------------------

    def release_all(self, txn_id: str) -> None:
        """Strict 2PL release: drop every lock of ``txn_id`` at once."""
        held = self._held.pop(txn_id, None)
        if held:
            # Visit in lock-table creation order -- the order the old
            # whole-table scan produced -- so the dispatch (and hence
            # grant/event) sequence is unchanged.
            resources = sorted(
                held, key=lambda r: self._resources[r].serial
            ) if len(held) > 1 else list(held)
            for resource in resources:
                state = self._resources.get(resource)
                request = state.holders.pop(txn_id, None) if state is not None else None
                if request is not None:
                    self._account_hold(resource, request)
                    self.releases += 1
                    self._dispatch(resource)
        self._graph.clear_txn(txn_id)

    def short_release(self, txn_id: str, downgrade: bool = True) -> list[Hashable]:
        """Early release at commit-phase start (Short-Commit).

        Shared locks are released outright; exclusive locks are
        *downgraded* to shared, so readers may proceed while writers
        stay blocked until the final :meth:`release_all`.  Returns the
        resources that lost exclusive protection, in lock-table order
        -- the engine marks those pages exposed.

        ``downgrade=False`` (the seeded ``short_release_all`` mutant)
        releases the exclusive locks too.

        The exclusive hold is what blocks other work, so a downgraded
        lock's hold time is accounted at the downgrade; the residual
        shared hold is clocked from the downgrade instant.
        """
        held = self._held.get(txn_id)
        if not held:
            return []
        resources = sorted(
            held, key=lambda r: self._resources[r].serial
        ) if len(held) > 1 else list(held)
        exposed: list[Hashable] = []
        for resource in resources:
            state = self._resources.get(resource)
            request = state.holders.get(txn_id) if state is not None else None
            if request is None:
                continue
            was_exclusive = request.mode is LockMode.EXCLUSIVE
            if was_exclusive and downgrade:
                self._account_hold(resource, request)
                request.mode = LockMode.SHARED
                request.grant_time = self._kernel.now
                self.downgrades += 1
                exposed.append(resource)
                self._dispatch(resource)
                continue
            if was_exclusive:
                exposed.append(resource)
            self._release_one(txn_id, resource)
        return exposed

    def _release_one(self, txn_id: str, resource: Hashable) -> None:
        state = self._resources.get(resource)
        request = state.holders.pop(txn_id, None) if state is not None else None
        if request is None:
            return
        held = self._held.get(txn_id)
        if held is not None:
            held.pop(resource, None)
            if not held:
                del self._held[txn_id]
        self._account_hold(resource, request)
        self.releases += 1
        self._dispatch(resource)

    def _account_hold(self, resource: Hashable, request: _Request) -> None:
        grant_time = (
            request.grant_time
            if request.grant_time is not None
            else request.request_time
        )
        hold = self._kernel.now - grant_time
        self.total_hold_time += hold
        if request.mode is LockMode.EXCLUSIVE:
            self.total_exclusive_hold_time += hold
        if hold > self.max_hold_time:
            self.max_hold_time = hold
        if self.hold_observer is not None:
            self.hold_observer(resource, hold)

    # -- internals ----------------------------------------------------------------

    def _grantable(self, state: _ResourceState, request: _Request) -> bool:
        return all(
            compatible(request.mode, holder.mode)
            for holder in state.holders.values()
            if holder.txn_id != request.txn_id
        )

    def _grant(self, state: _ResourceState, request: _Request) -> None:
        request.grant_time = self._kernel.now
        if request.upgrade and request.txn_id in state.holders:
            state.holders[request.txn_id].mode = LockMode.EXCLUSIVE
        else:
            state.holders[request.txn_id] = request
            held = self._held.get(request.txn_id)
            if held is None:
                self._held[request.txn_id] = {state.resource: None}
            else:
                held[state.resource] = None
        self.grants += 1
        if request.future is not None and not request.future.done:
            request.future.resolve(None)

    def _dispatch(self, resource: Hashable) -> None:
        """Grant from the queue front while requests are compatible."""
        state = self._resources.get(resource)
        if state is None:
            return
        while state.waiters:
            front = state.waiters[0]
            if front.upgrade:
                others = [h for h in state.holders.values() if h.txn_id != front.txn_id]
                if others:
                    break
            elif not self._grantable(state, front):
                break
            state.waiters.popleft()
            self._graph.clear(resource, front.txn_id)
            self._grant(state, front)
        self._restate_blockers(resource)
        if not state.holders and not state.waiters:
            del self._resources[resource]

    def _remove_waiter(
        self, resource: Hashable, request: _Request, dispatch: bool = True
    ) -> None:
        state = self._resources.get(resource)
        if state is None:
            return
        try:
            state.waiters.remove(request)
        except ValueError:
            pass
        self._graph.clear(resource, request.txn_id)
        if dispatch:
            self._dispatch(resource)

    def _restate_blockers(self, resource: Hashable) -> None:
        """Refresh waits-for edges contributed by this resource's queue."""
        state = self._resources.get(resource)
        if state is None:
            return
        ahead: list[_Request] = []
        for waiter in state.waiters:
            blockers = {
                holder.txn_id
                for holder in state.holders.values()
                if holder.txn_id != waiter.txn_id
                and (waiter.upgrade or not compatible(waiter.mode, holder.mode))
            }
            blockers.update(
                prior.txn_id
                for prior in ahead
                if not compatible(waiter.mode, prior.mode)
            )
            self._graph.set_blockers(resource, waiter.txn_id, blockers)
            ahead.append(waiter)

    def crash(self) -> None:
        """Site crash: fail every waiter, drop the whole lock table."""
        for state in self._resources.values():
            for request in state.waiters:
                if request.future is not None and not request.future.done:
                    request.future.fail(SiteCrashed(f"{self.site} crashed"))
        self._resources.clear()
        self._held.clear()
        self._graph = WaitsForGraph()

    def __repr__(self) -> str:
        return f"<LockManager {self.site} resources={len(self._resources)}>"
