"""Sagas [GS 87] -- compensation without global serializability.

"Compensating local transactions are used to undo committed local
transactions, but global serializability is not ensured" (§5).  The
execution shape is commit-before per-site -- locals commit as soon as
they finish, compensation runs on failure -- but the GTM installs **no
L1 lock table** for this protocol, so conflicting global transactions
interleave freely between a saga's steps.  EXP-B1 shows the resulting
serialization-graph cycles, which the paper's commit-before protocol
(with its L1 locks) never produces.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.core.protocols.base import ProtocolContext
from repro.core.protocols.commit_before import CommitBefore


class SagaCoordinator(CommitBefore):
    """Commit-before execution with compensation and no global locks."""

    name = "saga"
    requires_prepare = False

    def run(self, ctx: ProtocolContext) -> Generator[Any, Any, None]:
        assert ctx.l1 is None, "sagas run without global concurrency control"
        # Per-action stepping maximizes interleaving, which is both the
        # saga model's appeal (each step is a committed transaction) and
        # its weakness (no isolation between steps).
        yield from self._run_per_action(ctx)
