"""Altruistic locking [AGK 87, GS 87] -- early release with wake tracking.

"The goal of altruistic locking is the early release of locks without
violating serializability.  Compared to multi-level transactions, a
more complicated algorithm maintaining dependencies between
transactions is used" (§5).

Model implemented here (simplified to direct wakes, which is sufficient
for the chain-free workloads of the experiments):

* A global transaction *donates* an object as soon as it has executed
  its last access to it (the GTM knows the full operation list, so the
  donation point is computable).
* A donated lock no longer blocks others, but a transaction acquiring a
  donated object enters the donor's *wake*: it may not reach its global
  decision before the donor finished.
* Wake dependencies are the "more complicated algorithm" the paper
  mentions -- they must be maintained per transaction pair, while the
  multi-level scheme gets its concurrency from a static conflict table.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Hashable, Optional

from repro.core.global_txn import GlobalTxnState
from repro.core.protocols.base import ExecutionFailure, ProtocolContext
from repro.core.protocols.commit_before import CommitBefore
from repro.errors import DeadlockDetected, LockTimeout
from repro.mlt.conflicts import READ_WRITE_TABLE, ConflictTable
from repro.mlt.locks import SemanticLockManager, _Request
from repro.sim.events import Future

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Kernel


class AltruisticLockManager(SemanticLockManager):
    """L1 lock table with donations and wake dependencies."""

    def __init__(
        self,
        kernel: "Kernel",
        table: Optional[ConflictTable] = None,
        default_timeout: Optional[float] = None,
        name: str = "L1-altruistic",
    ):
        super().__init__(
            kernel,
            table or READ_WRITE_TABLE,
            default_timeout=default_timeout,
            name=name,
        )
        #: resource -> donors that released it early but still run
        self._donated: dict[Hashable, set[str]] = {}
        #: txn -> donors whose wake it entered
        self.wake: dict[str, set[str]] = {}
        #: txn -> future resolved when the transaction finishes
        self._finished: dict[str, Future] = {}
        self.donations = 0
        self.wake_entries = 0

    # -- donation ------------------------------------------------------------

    def donate(self, txn_id: str, resource: Hashable) -> None:
        """Release ``resource`` early: others may pass, entering the wake."""
        state = self._resources.get(resource)
        if state is None or txn_id not in state.holders:
            return
        self._donated.setdefault(resource, set()).add(txn_id)
        self.donations += 1
        self._dispatch(resource)

    def _grantable(self, state, request: "_Request") -> bool:
        resource = self._resource_of(state)
        donors = self._donated.get(resource, set())
        for holder, modes in state.holders.items():
            if holder == request.txn_id:
                continue
            if any(not self.table.compatible(request.mode, m) for m in modes):
                if holder not in donors:
                    return False
                # Passing this donation would put the requester in the
                # donor's wake; refuse if that closes a wake cycle
                # (mutual waits would never resolve).
                if self._wake_reaches(holder, request.txn_id):
                    return False
        return True

    def _wake_reaches(self, start: str, target: str) -> bool:
        """Is ``target`` reachable from ``start`` along wake edges?"""
        stack = [start]
        seen = set()
        while stack:
            node = stack.pop()
            if node == target:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self.wake.get(node, ()))
        return False

    def _grant(self, state, request: "_Request") -> None:
        resource = self._resource_of(state)
        donors = self._donated.get(resource, set())
        for holder, modes in state.holders.items():
            if holder == request.txn_id or holder not in donors:
                continue
            if any(not self.table.compatible(request.mode, m) for m in modes):
                # Passing a donated incompatible lock: enter the wake.
                self.wake.setdefault(request.txn_id, set()).add(holder)
                self.wake_entries += 1
        super()._grant(state, request)

    def _resource_of(self, state) -> Hashable:
        for resource, candidate in self._resources.items():
            if candidate is state:
                return resource
        return None

    # -- completion tracking -----------------------------------------------------

    def finished_future(self, txn_id: str) -> Future:
        if txn_id not in self._finished:
            self._finished[txn_id] = Future(label=f"altruistic-finish:{txn_id}")
        return self._finished[txn_id]

    def finish(self, txn_id: str) -> None:
        """The transaction ended: release, clear donations, wake waiters."""
        self.release_all(txn_id)
        for donors in self._donated.values():
            donors.discard(txn_id)
        future = self.finished_future(txn_id)
        if not future.done:
            future.resolve(None)

    def wait_for_wake(
        self, txn_id: str, timeout: Optional[float] = None
    ) -> Generator[Any, Any, None]:
        """Block until every donor whose wake ``txn_id`` entered finished.

        Raises :class:`~repro.errors.LockTimeout` if a donor does not
        finish within ``timeout`` -- the escape hatch for residual
        cross-structure waits the simplified wake rule cannot exclude.
        """
        from repro.errors import LockTimeout

        for donor in sorted(self.wake.get(txn_id, ())):
            future = self.finished_future(donor)
            if timeout is None:
                yield future
            else:
                ok, _ = yield from self._kernel.wait_with_timeout(future, timeout)
                if not ok:
                    raise LockTimeout(f"wake wait on {donor} timed out")
        self.wake.pop(txn_id, None)


class AltruisticCommit(CommitBefore):
    """Commit-before with altruistic L1 locking.

    Donates each object after the transaction's last access to it, and
    waits out its wake dependencies before the global decision.
    """

    name = "altruistic"
    requires_prepare = False

    def run(self, ctx: ProtocolContext) -> Generator[Any, Any, None]:
        locks = ctx.l1
        assert isinstance(locks, AltruisticLockManager), (
            "altruistic protocol needs an AltruisticLockManager"
        )
        gtxn = ctx.gtxn
        # Last access index per object, to find donation points.
        last_access: dict[tuple, int] = {}
        for index, operation in enumerate(ctx.decomposition.ordered):
            last_access[(operation.table, operation.key)] = index

        executed = []
        failure: Optional[str] = None
        try:
            from repro.mlt.actions import inverse_of

            for index, operation in enumerate(ctx.decomposition.ordered):
                yield from ctx.acquire_l1(operation)
                marker_key = f"{gtxn.gtxn_id}:{index}"
                value, before, retries = yield from self._execute_action(
                    ctx, operation, marker_key
                )
                ctx.outcome.l0_retries += retries
                if operation.kind == "read":
                    ctx.outcome.reads[f"{operation.table}[{operation.key!r}]"] = value
                record = ctx.undo_log.record(
                    gtxn.gtxn_id, operation.site, operation, inverse_of(operation, before)
                )
                executed.append((index, operation, record))
                if last_access[(operation.table, operation.key)] == index:
                    locks.donate(gtxn.gtxn_id, (operation.table, operation.key))
        except ExecutionFailure as exc:
            failure = str(exc)
            ctx.outcome.retriable = exc.aborted
        except (DeadlockDetected, LockTimeout) as exc:
            failure = f"L1 conflict: {exc}"
            ctx.outcome.retriable = True

        # The wake rule: do not decide before every donor finished.
        try:
            yield from locks.wait_for_wake(
                gtxn.gtxn_id, timeout=ctx.config.msg_timeout * 20
            )
        except LockTimeout as exc:
            if failure is None:
                failure = f"L1 conflict: {exc}"
                ctx.outcome.retriable = True

        if failure is None and not ctx.intends_abort:
            gtxn.set_decision("commit")
            gtxn.set_state(GlobalTxnState.COMMITTED)
            ctx.outcome.committed = True
        else:
            reason = failure or "intended abort"
            gtxn.set_decision("abort", cause=reason)
            gtxn.set_state(GlobalTxnState.WAITING_TO_ABORT)
            yield from self._undo_actions(ctx, executed)
            gtxn.set_state(GlobalTxnState.ABORTED)
            ctx.outcome.reason = reason
        ctx.undo_log.forget(gtxn.gtxn_id)
        locks.finish(gtxn.gtxn_id)
