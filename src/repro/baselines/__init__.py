"""Related-work baselines (paper §5).

* :mod:`repro.baselines.sagas` -- sagas [GS 87]: compensation-based
  undo like commit-before, but **without** global concurrency control;
  global serializability is not ensured (EXP-B1 detects the cycles).
* :mod:`repro.baselines.altruistic` -- altruistic locking [AGK 87/GS 87]:
  early lock release ("donation") with wake tracking; serializable but
  with a more complicated dependency-maintenance algorithm than
  multi-level transactions.
"""

from repro.baselines.altruistic import AltruisticCommit, AltruisticLockManager
from repro.baselines.sagas import SagaCoordinator

__all__ = ["AltruisticCommit", "AltruisticLockManager", "SagaCoordinator"]
