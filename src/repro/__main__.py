"""``python -m repro`` -- a 30-second demonstration.

With no arguments: runs one transfer under each commit protocol
against a fresh two-bank federation, prints the outcome and the
per-protocol cost, then shows the paper's headline effect: an intended
abort is free under commit-after and needs inverse transactions under
commit-before.

With ``--protocol``: runs a transfer workload under that one protocol,
with ``--sites``/``--txns``/``--seed`` shaping the federation and
``--report``/``--trace-out`` exporting the observability views (the
paper's §4 cost table and a Chrome ``trace_event`` JSON for
``chrome://tracing`` / Perfetto).
"""

from __future__ import annotations

import argparse
from typing import Optional

from repro import Federation, FederationConfig, GTMConfig, SiteSpec, ops
from repro.bench.report import format_table
from repro.core.invariants import atomicity_report
from repro.core.protocols import (
    default_granularity,
    preparable_protocols,
    protocol_names,
)

PROTOCOLS = protocol_names()


def build(
    protocol: str,
    sites: int = 2,
    seed: int = 1,
    metrics: bool = False,
    spans: bool = False,
    coordinators: int = 1,
    partitions: int = 0,
    replication: int = 1,
    batch_window: float = 0.0,
    batch_policy: str = "static",
    keys: int = 0,
) -> Federation:
    preparable = protocol in preparable_protocols()
    granularity = default_granularity(protocol)
    specs = [
        SiteSpec(
            f"bank_{index}",
            tables={
                f"acc_{index}": (
                    # The demo's single shared row maximises visible
                    # contention; open-loop traffic gets a keyspace so
                    # the admission controller, not the lock queue on
                    # one row, shapes the latency.
                    {f"k{j}": 100 for j in range(keys)}
                    if keys
                    else {"holder": 100}
                )
            },
            preparable=preparable,
            buckets=keys if keys else 8,
        )
        for index in range(sites)
    ]
    placement = None
    if partitions > 0:
        from repro.dataplane import PlacementSpec

        # One shared account namespace hash-placed across the banks;
        # four keys per partition keeps the demo's contention visible.
        placement = [
            PlacementSpec(
                table="acct",
                partitions=partitions,
                replication=replication,
                rows={f"k{index}": 100 for index in range(4 * partitions)},
            )
        ]
    return Federation(
        specs,
        FederationConfig(
            seed=seed,
            metrics=metrics,
            spans=spans,
            coordinators=coordinators,
            placement=placement,
            batch_window=batch_window,
            batch_policy=batch_policy,
            gtm=GTMConfig(
                protocol=protocol,
                granularity=granularity,
                pipeline_window=batch_window,
                pipeline_policy=batch_policy,
            ),
        ),
    )


def demo() -> None:
    """The original all-protocols comparison (default behaviour)."""
    print(__doc__)
    rows = []
    for protocol in PROTOCOLS:
        fed = build(protocol)
        commit = fed.submit(
            [ops.increment("acc_0", "holder", -10), ops.increment("acc_1", "holder", 10)]
        )
        fed.run()
        abort = fed.submit(
            [ops.increment("acc_0", "holder", -5), ops.increment("acc_1", "holder", 5)],
            intends_abort=True,
        )
        fed.run()
        rows.append([
            protocol,
            "yes" if commit.value.committed else "NO",
            round(commit.value.response_time, 1),
            fed.network.sent,
            abort.value.undo_executions,
            fed.peek("bank_0", "acc_0", "holder"),
            fed.peek("bank_1", "acc_1", "holder"),
            "OK" if atomicity_report(fed).ok else "VIOLATED",
        ])
    print(format_table(
        ["protocol", "commit ok", "resp time", "messages",
         "undo txns on abort", "bank_0", "bank_1", "atomicity"],
        rows,
        title="one committed transfer + one intended abort, per protocol",
    ))
    print("\nAll balances 90/110: the committed transfer applied exactly once,")
    print("the aborted one left no trace -- by plain abort (2PC/after) or by")
    print("inverse transactions (before/saga/altruistic), per the 1991 paper.")


def run_single(
    protocol: str,
    sites: int,
    txns: int,
    seed: int,
    report: bool,
    trace_out: Optional[str],
    coordinators: int = 1,
    partitions: int = 0,
    replication: int = 1,
    zipf: float = 0.0,
    batch_window: float = 0.0,
    batch_policy: str = "static",
) -> None:
    """One-protocol run with optional observability exports."""
    fed = build(
        protocol, sites=sites, seed=seed,
        metrics=report or trace_out is not None,
        spans=trace_out is not None,
        coordinators=coordinators,
        partitions=partitions,
        replication=replication,
        batch_window=batch_window,
        batch_policy=batch_policy,
    )
    batches = []
    if partitions > 0:
        # Transfers inside the placed namespace: the data plane routes
        # each key to its partition's replica set at decompose time.
        keys = [f"k{index}" for index in range(4 * partitions)]
        picker = None
        if zipf > 0.0:
            from bisect import bisect_left

            weights = [1.0 / (rank + 1) ** zipf for rank in range(len(keys))]
            total = sum(weights)
            cdf, running = [], 0.0
            for weight in weights:
                running += weight / total
                cdf.append(running)
            cdf[-1] = 1.0
            rng = fed.kernel.rng.stream("cli-zipf")
            picker = lambda: keys[bisect_left(cdf, rng.random())]  # noqa: E731
        for index in range(txns):
            if picker is not None:
                src_key = picker()
                dst_key = picker()
                if dst_key == src_key:
                    dst_key = keys[(keys.index(src_key) + 1) % len(keys)]
            else:
                src_key = keys[index % len(keys)]
                dst_key = keys[(index + 1) % len(keys)]
            batches.append({
                "operations": [
                    ops.increment("acct", src_key, -1),
                    ops.increment("acct", dst_key, 1),
                ],
                "name": f"transfer-{index}",
                "delay": index * 25.0,
            })
    else:
        for index in range(txns):
            src = index % sites
            dst = (index + 1) % sites
            batches.append({
                "operations": [
                    ops.increment(f"acc_{src}", "holder", -1),
                    ops.increment(f"acc_{dst}", "holder", 1),
                ],
                "name": f"transfer-{index}",
                # Staggered submission: the default workload demonstrates
                # protocol cost, not contention (all transfers touch the
                # same accounts).
                "delay": index * 25.0,
            })
    outcomes = fed.run_transactions(batches)
    committed = sum(1 for outcome in outcomes if outcome.committed)
    shards = (
        f", {coordinators} coordinators" if coordinators > 1 else ""
    )
    placed = (
        f", {partitions} partitions x{replication}" if partitions > 0 else ""
    )
    print(
        f"{protocol}: {committed}/{txns} committed over {sites} sites"
        f"{shards}{placed} (seed {seed}), atomicity "
        f"{'OK' if atomicity_report(fed).ok else 'VIOLATED'}"
    )
    if partitions > 0:
        dp = fed.dataplane
        print(
            f"data plane: routed_reads={dp.routed_reads} "
            f"routed_writes={dp.routed_writes} promotions={dp.promotions} "
            f"stale_rejections={dp.stale_rejections}"
        )
    if report:
        print()
        print(fed.report().render())
    if trace_out is not None:
        from repro.obs import validate_chrome_trace, write_chrome_trace

        doc = write_chrome_trace(fed.obs.span_forest(), trace_out)
        problems = validate_chrome_trace(doc)
        if problems:
            raise SystemExit(f"invalid chrome trace: {problems}")
        print(f"\nwrote {len(doc['traceEvents'])} trace events to {trace_out}")


def run_open_loop(
    protocol: str,
    sites: int,
    txns: int,
    seed: int,
    arrival: str,
    arrival_rate: float,
    slo_p99: float,
    coordinators: int = 1,
    batch_window: float = 0.0,
    batch_policy: str = "static",
) -> None:
    """Open-loop traffic run: arrival pattern + optional SLO control."""
    from repro.workloads.open_loop import OpenLoopDriver, OpenLoopSpec

    keys = 64
    fed = build(
        protocol, sites=sites, seed=seed,
        coordinators=coordinators,
        batch_window=batch_window,
        batch_policy=batch_policy,
        keys=keys,
    )
    batches = [
        {
            "operations": [
                ops.increment(f"acc_{index % sites}", f"k{index % keys}", -1),
                ops.increment(f"acc_{(index + 1) % sites}", f"k{index % keys}", 1),
            ],
            "name": f"transfer-{index}",
        }
        for index in range(txns)
    ]
    driver = OpenLoopDriver(
        fed,
        OpenLoopSpec(
            arrival_rate=arrival_rate,
            n_txns=txns,
            arrival=arrival,
            slo_p99=slo_p99,
        ),
    )
    result = driver.run(batches).as_dict()
    corrected = result["p99_admitted_or_shed"]
    print(
        f"{protocol}: open-loop {arrival} arrivals at rate {arrival_rate} "
        f"(seed {seed}): {result['committed']}/{txns} committed, "
        f"{result['shed']} shed, throughput {result['throughput']:.4f}/u"
    )
    print(
        f"latency: p50 {result['p50_response']}, p99 {result['p99_response']} "
        f"(committed only), p99 admitted-or-shed "
        f"{'unbounded (shed tail)' if corrected is None else corrected}"
    )
    if slo_p99 > 0:
        print(
            f"slo: target p99 {slo_p99}, slo_sheds {result['slo_sheds']}, "
            f"throttles {result['slo_throttles']}, min admission scale "
            f"{result['min_admission_scale']}"
        )


def main(argv: Optional[list[str]] = None) -> None:
    import sys

    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "check":
        # The checker has its own argument set and exit-code contract
        # (1 = counterexample found); see repro.check.cli.
        from repro.check.cli import main as check_main

        raise SystemExit(check_main(argv[1:]))
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Atomic commitment for integrated database systems (demo + reports).",
    )
    parser.add_argument(
        "--protocol", choices=PROTOCOLS, default=None,
        help="run one protocol instead of the all-protocols demo",
    )
    parser.add_argument("--sites", type=int, default=2, help="number of local sites")
    parser.add_argument(
        "--coordinators", type=int, default=1,
        help="number of commit coordinators (sharded GTM pool; default 1)",
    )
    parser.add_argument("--txns", type=int, default=4, help="number of transfers to run")
    parser.add_argument(
        "--partitions", type=int, default=0,
        help="> 0: place one shared table across the sites via the data "
        "plane (hash partitioning, one namespace)",
    )
    parser.add_argument(
        "--replication", type=int, default=1,
        help="replica-set size per partition (requires --partitions)",
    )
    parser.add_argument(
        "--zipf", type=float, default=0.0,
        help="Zipf skew exponent for key choice (requires --partitions)",
    )
    parser.add_argument("--seed", type=int, default=1, help="simulation seed")
    parser.add_argument(
        "--batch-window", type=float, default=0.0,
        help="> 0: per-link message batching + decision pipelining "
        "window (0 = unbatched seed path)",
    )
    parser.add_argument(
        "--batch-policy", choices=("static", "adaptive"), default="static",
        help="flush policy for the batch/pipeline windows: static "
        "fixed-delay or adaptive size-or-deadline (requires --batch-window)",
    )
    parser.add_argument(
        "--arrival", default=None,
        choices=("poisson", "diurnal", "bursty", "flash_crowd"),
        help="run open-loop traffic with this arrival pattern instead "
        "of the staggered batch workload (requires --protocol)",
    )
    parser.add_argument(
        "--arrival-rate", type=float, default=0.25,
        help="mean arrivals per time unit for --arrival (default 0.25)",
    )
    parser.add_argument(
        "--slo-p99", type=float, default=0.0,
        help="> 0: target p99 response time for the open-loop admission "
        "controller (requires --arrival)",
    )
    parser.add_argument(
        "--report", action="store_true",
        help="print the paper's §4 cost table for the run",
    )
    parser.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="write a Chrome trace_event JSON of the run's spans",
    )
    args = parser.parse_args(argv)
    if args.sites < 2:
        parser.error("--sites must be at least 2")
    if args.coordinators < 1:
        parser.error("--coordinators must be at least 1")
    if args.partitions < 0:
        parser.error("--partitions must be >= 0")
    if args.replication < 1:
        parser.error("--replication must be at least 1")
    if args.partitions == 0 and (args.replication != 1 or args.zipf):
        parser.error("--replication/--zipf require --partitions")
    if args.zipf < 0:
        parser.error("--zipf must be >= 0")
    if args.batch_window < 0:
        parser.error("--batch-window must be >= 0")
    if args.batch_policy == "adaptive" and args.batch_window == 0:
        parser.error("--batch-policy adaptive requires --batch-window > 0")
    if args.slo_p99 < 0:
        parser.error("--slo-p99 must be >= 0")
    if args.slo_p99 and args.arrival is None:
        parser.error("--slo-p99 requires --arrival")
    if args.arrival is not None and args.arrival_rate <= 0:
        parser.error("--arrival-rate must be positive")
    if args.protocol is None:
        if args.report or args.trace_out:
            parser.error("--report/--trace-out require --protocol")
        if args.coordinators != 1:
            parser.error("--coordinators requires --protocol")
        if args.partitions:
            parser.error("--partitions requires --protocol")
        if args.batch_window or args.arrival:
            parser.error("--batch-window/--arrival require --protocol")
        demo()
        return
    if args.arrival is not None:
        if args.partitions:
            parser.error("--arrival does not combine with --partitions")
        if args.report or args.trace_out:
            parser.error("--arrival does not combine with --report/--trace-out")
        run_open_loop(
            args.protocol, args.sites, args.txns, args.seed,
            arrival=args.arrival,
            arrival_rate=args.arrival_rate,
            slo_p99=args.slo_p99,
            coordinators=args.coordinators,
            batch_window=args.batch_window,
            batch_policy=args.batch_policy,
        )
        return
    run_single(
        args.protocol, args.sites, args.txns, args.seed,
        report=args.report, trace_out=args.trace_out,
        coordinators=args.coordinators,
        partitions=args.partitions,
        replication=args.replication,
        zipf=args.zipf,
        batch_window=args.batch_window,
        batch_policy=args.batch_policy,
    )


if __name__ == "__main__":
    main()
