"""``python -m repro`` -- a 30-second demonstration.

With no arguments: runs one transfer under each commit protocol
against a fresh two-bank federation, prints the outcome and the
per-protocol cost, then shows the paper's headline effect: an intended
abort is free under commit-after and needs inverse transactions under
commit-before.

With ``--protocol``: runs a transfer workload under that one protocol,
with ``--sites``/``--txns``/``--seed`` shaping the federation and
``--report``/``--trace-out`` exporting the observability views (the
paper's §4 cost table and a Chrome ``trace_event`` JSON for
``chrome://tracing`` / Perfetto).
"""

from __future__ import annotations

import argparse
from typing import Optional

from repro import Federation, FederationConfig, GTMConfig, SiteSpec, ops
from repro.bench.report import format_table
from repro.core.invariants import atomicity_report

PROTOCOLS = ("before", "after", "2pc", "2pc-pa", "3pc", "paxos", "saga", "altruistic")


def build(
    protocol: str,
    sites: int = 2,
    seed: int = 1,
    metrics: bool = False,
    spans: bool = False,
    coordinators: int = 1,
) -> Federation:
    preparable = protocol in ("2pc", "2pc-pa", "3pc", "paxos")
    granularity = "per_action" if protocol in ("before", "saga", "altruistic") else "per_site"
    specs = [
        SiteSpec(
            f"bank_{index}",
            tables={f"acc_{index}": {"holder": 100}},
            preparable=preparable,
        )
        for index in range(sites)
    ]
    return Federation(
        specs,
        FederationConfig(
            seed=seed,
            metrics=metrics,
            spans=spans,
            coordinators=coordinators,
            gtm=GTMConfig(protocol=protocol, granularity=granularity),
        ),
    )


def demo() -> None:
    """The original all-protocols comparison (default behaviour)."""
    print(__doc__)
    rows = []
    for protocol in PROTOCOLS:
        fed = build(protocol)
        commit = fed.submit(
            [ops.increment("acc_0", "holder", -10), ops.increment("acc_1", "holder", 10)]
        )
        fed.run()
        abort = fed.submit(
            [ops.increment("acc_0", "holder", -5), ops.increment("acc_1", "holder", 5)],
            intends_abort=True,
        )
        fed.run()
        rows.append([
            protocol,
            "yes" if commit.value.committed else "NO",
            round(commit.value.response_time, 1),
            fed.network.sent,
            abort.value.undo_executions,
            fed.peek("bank_0", "acc_0", "holder"),
            fed.peek("bank_1", "acc_1", "holder"),
            "OK" if atomicity_report(fed).ok else "VIOLATED",
        ])
    print(format_table(
        ["protocol", "commit ok", "resp time", "messages",
         "undo txns on abort", "bank_0", "bank_1", "atomicity"],
        rows,
        title="one committed transfer + one intended abort, per protocol",
    ))
    print("\nAll balances 90/110: the committed transfer applied exactly once,")
    print("the aborted one left no trace -- by plain abort (2PC/after) or by")
    print("inverse transactions (before/saga/altruistic), per the 1991 paper.")


def run_single(
    protocol: str,
    sites: int,
    txns: int,
    seed: int,
    report: bool,
    trace_out: Optional[str],
    coordinators: int = 1,
) -> None:
    """One-protocol run with optional observability exports."""
    fed = build(
        protocol, sites=sites, seed=seed,
        metrics=report or trace_out is not None,
        spans=trace_out is not None,
        coordinators=coordinators,
    )
    batches = []
    for index in range(txns):
        src = index % sites
        dst = (index + 1) % sites
        batches.append({
            "operations": [
                ops.increment(f"acc_{src}", "holder", -1),
                ops.increment(f"acc_{dst}", "holder", 1),
            ],
            "name": f"transfer-{index}",
            # Staggered submission: the default workload demonstrates
            # protocol cost, not contention (all transfers touch the
            # same accounts).
            "delay": index * 25.0,
        })
    outcomes = fed.run_transactions(batches)
    committed = sum(1 for outcome in outcomes if outcome.committed)
    shards = (
        f", {coordinators} coordinators" if coordinators > 1 else ""
    )
    print(
        f"{protocol}: {committed}/{txns} committed over {sites} sites"
        f"{shards} (seed {seed}), atomicity "
        f"{'OK' if atomicity_report(fed).ok else 'VIOLATED'}"
    )
    if report:
        print()
        print(fed.report().render())
    if trace_out is not None:
        from repro.obs import validate_chrome_trace, write_chrome_trace

        doc = write_chrome_trace(fed.obs.span_forest(), trace_out)
        problems = validate_chrome_trace(doc)
        if problems:
            raise SystemExit(f"invalid chrome trace: {problems}")
        print(f"\nwrote {len(doc['traceEvents'])} trace events to {trace_out}")


def main(argv: Optional[list[str]] = None) -> None:
    import sys

    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "check":
        # The checker has its own argument set and exit-code contract
        # (1 = counterexample found); see repro.check.cli.
        from repro.check.cli import main as check_main

        raise SystemExit(check_main(argv[1:]))
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Atomic commitment for integrated database systems (demo + reports).",
    )
    parser.add_argument(
        "--protocol", choices=PROTOCOLS, default=None,
        help="run one protocol instead of the all-protocols demo",
    )
    parser.add_argument("--sites", type=int, default=2, help="number of local sites")
    parser.add_argument(
        "--coordinators", type=int, default=1,
        help="number of commit coordinators (sharded GTM pool; default 1)",
    )
    parser.add_argument("--txns", type=int, default=4, help="number of transfers to run")
    parser.add_argument("--seed", type=int, default=1, help="simulation seed")
    parser.add_argument(
        "--report", action="store_true",
        help="print the paper's §4 cost table for the run",
    )
    parser.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="write a Chrome trace_event JSON of the run's spans",
    )
    args = parser.parse_args(argv)
    if args.sites < 2:
        parser.error("--sites must be at least 2")
    if args.coordinators < 1:
        parser.error("--coordinators must be at least 1")
    if args.protocol is None:
        if args.report or args.trace_out:
            parser.error("--report/--trace-out require --protocol")
        if args.coordinators != 1:
            parser.error("--coordinators requires --protocol")
        demo()
        return
    run_single(
        args.protocol, args.sites, args.txns, args.seed,
        report=args.report, trace_out=args.trace_out,
        coordinators=args.coordinators,
    )


if __name__ == "__main__":
    main()
