"""``python -m repro`` -- a 30-second demonstration.

Runs one transfer under each commit protocol against a fresh two-bank
federation, prints the outcome and the per-protocol cost, then shows
the paper's headline effect: an intended abort is free under
commit-after and needs inverse transactions under commit-before.
"""

from __future__ import annotations

from repro import Federation, FederationConfig, GTMConfig, SiteSpec, ops
from repro.bench.report import format_table
from repro.core.invariants import atomicity_report


def build(protocol: str) -> Federation:
    preparable = protocol in ("2pc", "2pc-pa", "3pc")
    granularity = "per_action" if protocol in ("before", "saga", "altruistic") else "per_site"
    return Federation(
        [
            SiteSpec("bank_a", tables={"acc_a": {"alice": 100}}, preparable=preparable),
            SiteSpec("bank_b", tables={"acc_b": {"bob": 50}}, preparable=preparable),
        ],
        FederationConfig(seed=1, gtm=GTMConfig(protocol=protocol, granularity=granularity)),
    )


def main() -> None:
    print(__doc__)
    rows = []
    for protocol in ("before", "after", "2pc", "2pc-pa", "3pc", "saga", "altruistic"):
        fed = build(protocol)
        commit = fed.submit(
            [ops.increment("acc_a", "alice", -10), ops.increment("acc_b", "bob", 10)]
        )
        fed.run()
        abort = fed.submit(
            [ops.increment("acc_a", "alice", -5), ops.increment("acc_b", "bob", 5)],
            intends_abort=True,
        )
        fed.run()
        rows.append([
            protocol,
            "yes" if commit.value.committed else "NO",
            round(commit.value.response_time, 1),
            fed.network.sent,
            abort.value.undo_executions,
            fed.peek("bank_a", "acc_a", "alice"),
            fed.peek("bank_b", "acc_b", "bob"),
            "OK" if atomicity_report(fed).ok else "VIOLATED",
        ])
    print(format_table(
        ["protocol", "commit ok", "resp time", "messages",
         "undo txns on abort", "alice", "bob", "atomicity"],
        rows,
        title="one committed transfer + one intended abort, per protocol",
    ))
    print("\nAll balances 90/60: the committed transfer applied exactly once,")
    print("the aborted one left no trace -- by plain abort (2PC/after) or by")
    print("inverse transactions (before/saga/altruistic), per the 1991 paper.")


if __name__ == "__main__":
    main()
