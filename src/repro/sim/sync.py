"""Synchronization helpers built on futures.

:class:`Mailbox` is the building block for message queues (network
nodes) and FIFO work queues (communication managers).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator

from repro.sim.events import Future


class Mailbox:
    """Unbounded FIFO queue with blocking receive.

    ``put`` never blocks.  ``recv`` is a generator to be driven with
    ``yield from``; it returns the next item, waiting if the queue is
    empty.  Multiple receivers are served in FIFO order.
    """

    def __init__(self, name: str = "mailbox"):
        self.name = name
        self._items: deque[Any] = deque()
        self._waiters: deque[Future] = deque()
        self._recv_label = f"{name}:recv"

    def put(self, item: Any) -> None:
        """Enqueue ``item``, waking the oldest waiting receiver if any."""
        if self._waiters:
            self._waiters.popleft().resolve(item)
        else:
            self._items.append(item)

    def recv(self) -> Generator[Any, Any, Any]:
        """Dequeue the next item, blocking the caller until one arrives."""
        if self._items:
            return self._items.popleft()
        waiter = Future(label=self._recv_label)
        self._waiters.append(waiter)
        item = yield waiter
        return item

    def drain(self) -> list[Any]:
        """Remove and return all queued items without blocking."""
        items = list(self._items)
        self._items.clear()
        return items

    def fail_waiters(self, exc: BaseException) -> None:
        """Fail every blocked receiver (used when a node crashes)."""
        waiters, self._waiters = self._waiters, deque()
        for waiter in waiters:
            waiter.fail(exc)

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:
        return f"<Mailbox {self.name} items={len(self._items)} waiters={len(self._waiters)}>"


class FifoLock:
    """A fair mutex for processes (used e.g. to serialize OCC commits).

    Usage::

        yield from lock.acquire()
        try:
            ...
        finally:
            lock.release()
    """

    def __init__(self, name: str = "lock"):
        self.name = name
        self._locked = False
        self._waiters: deque[Future] = deque()

    @property
    def locked(self) -> bool:
        return self._locked

    def acquire(self) -> Generator[Any, Any, None]:
        if not self._locked:
            self._locked = True
            return
        waiter = Future(label=f"{self.name}:acquire")
        self._waiters.append(waiter)
        yield waiter

    def release(self) -> None:
        if not self._locked:
            raise RuntimeError(f"{self.name} released while unlocked")
        if self._waiters:
            # Hand the lock directly to the next waiter (stays locked).
            self._waiters.popleft().resolve(None)
        else:
            self._locked = False

    def reset(self, exc: BaseException) -> None:
        """Fail every waiter and unlock (used when a site crashes)."""
        waiters, self._waiters = self._waiters, deque()
        for waiter in waiters:
            waiter.fail(exc)
        self._locked = False

    def __repr__(self) -> str:
        state = "locked" if self._locked else "free"
        return f"<FifoLock {self.name} {state} waiters={len(self._waiters)}>"
