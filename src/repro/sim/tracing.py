"""Structured trace log.

Every interesting event in a run -- state transitions, messages, lock
grants, log forces, redo/undo executions -- is appended to the kernel's
:class:`TraceLog` as a :class:`TraceRecord`.  Experiments and the
figure-conformance tests query the log instead of instrumenting the
code under test.

Records are kept as structured objects and only rendered to text when a
*sink* is attached (:meth:`TraceLog.attach_sink`) or a dump is
requested -- formatting is lazy, so the common no-sink run pays nothing
per event beyond the record itself.  Disabling the log entirely
(``trace.enabled = False``) turns :meth:`TraceLog.emit` into an early
return; hot callers additionally guard on :attr:`TraceLog.enabled` to
skip building the keyword payload at all.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Kernel


class TraceRecord:
    """One timestamped event.

    A hand-written slots class rather than a frozen dataclass: records
    are allocated once per traced event, and the frozen-dataclass
    ``object.__setattr__`` per field tripled construction cost on the
    hottest allocation site of a traced run.  Treat instances as
    immutable by convention.

    Attributes
    ----------
    time:
        Simulated time of the event.
    category:
        Coarse event class, e.g. ``"message"``, ``"txn_state"``,
        ``"lock"``, ``"log"``, ``"gtxn_state"``, ``"redo"``, ``"undo"``.
    site:
        Name of the node the event happened on (``"central"`` for the
        global system).
    subject:
        Identifier of the entity involved (transaction id, lock name,
        message type, ...).
    details:
        Free-form payload.
    """

    __slots__ = ("time", "category", "site", "subject", "details")

    def __init__(
        self,
        time: float,
        category: str,
        site: str,
        subject: str,
        details: Optional[dict[str, Any]] = None,
    ):
        self.time = time
        self.category = category
        self.site = site
        self.subject = subject
        self.details = {} if details is None else details

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceRecord):
            return NotImplemented
        return (
            self.time == other.time
            and self.category == other.category
            and self.site == other.site
            and self.subject == other.subject
            and self.details == other.details
        )

    def __str__(self) -> str:
        detail = " ".join(f"{k}={v}" for k, v in self.details.items())
        return f"[{self.time:10.3f}] {self.site:<12} {self.category:<10} {self.subject} {detail}"

    def __repr__(self) -> str:
        return (
            f"TraceRecord(time={self.time!r}, category={self.category!r}, "
            f"site={self.site!r}, subject={self.subject!r}, details={self.details!r})"
        )


class TraceLog:
    """Append-only event log with simple query helpers."""

    __slots__ = ("_kernel", "records", "enabled", "_sink")

    def __init__(self, kernel: "Kernel"):
        self._kernel = kernel
        self.records: list[TraceRecord] = []
        self.enabled = True
        self._sink: Optional[Callable[[str], None]] = None

    def attach_sink(self, sink: Callable[[str], None]) -> None:
        """Stream formatted lines to ``sink`` as records are emitted.

        Formatting happens only while a sink is attached; remove it
        again with :meth:`detach_sink`.
        """
        self._sink = sink

    def detach_sink(self) -> None:
        self._sink = None

    def emit(self, category: str, site: str, subject: str, **details: Any) -> None:
        """Append a record stamped with the current simulated time."""
        if not self.enabled:
            return
        record = TraceRecord(self._kernel._now, category, site, subject, details)
        self.records.append(record)
        if self._sink is not None:
            self._sink(str(record))

    # -- queries -----------------------------------------------------------

    def select(
        self,
        category: Optional[str] = None,
        site: Optional[str] = None,
        subject: Optional[str] = None,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
    ) -> list[TraceRecord]:
        """Return records matching all the given filters, in time order."""
        out = []
        for record in self.records:
            if category is not None and record.category != category:
                continue
            if site is not None and record.site != site:
                continue
            if subject is not None and record.subject != subject:
                continue
            if predicate is not None and not predicate(record):
                continue
            out.append(record)
        return out

    def first(self, **filters: Any) -> Optional[TraceRecord]:
        """First record matching ``select`` filters, or ``None``."""
        matches = self.select(**filters)
        return matches[0] if matches else None

    def last(self, **filters: Any) -> Optional[TraceRecord]:
        """Last record matching ``select`` filters, or ``None``."""
        matches = self.select(**filters)
        return matches[-1] if matches else None

    def subjects(self, category: str) -> list[str]:
        """Distinct subjects seen for ``category``, in first-seen order."""
        seen: dict[str, None] = {}
        for record in self.records:
            if record.category == category:
                seen.setdefault(record.subject, None)
        return list(seen)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def dump(self, **filters: Any) -> str:
        """Human-readable rendering of matching records."""
        return "\n".join(str(r) for r in self.select(**filters))
