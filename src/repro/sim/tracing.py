"""Structured trace log.

Every interesting event in a run -- state transitions, messages, lock
grants, log forces, redo/undo executions -- is appended to the kernel's
:class:`TraceLog` as a :class:`TraceRecord`.  Experiments and the
figure-conformance tests query the log instead of instrumenting the
code under test.

Records are kept as structured objects and only rendered to text when a
*sink* is attached (:meth:`TraceLog.attach_sink`) or a dump is
requested -- formatting is lazy, so the common no-sink run pays nothing
per event beyond the record itself.  Disabling the log entirely
(``trace.enabled = False``) turns :meth:`TraceLog.emit` into an early
return; hot callers additionally guard on :attr:`TraceLog.enabled` to
skip building the keyword payload at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Kernel


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One timestamped event.

    Attributes
    ----------
    time:
        Simulated time of the event.
    category:
        Coarse event class, e.g. ``"message"``, ``"txn_state"``,
        ``"lock"``, ``"log"``, ``"gtxn_state"``, ``"redo"``, ``"undo"``.
    site:
        Name of the node the event happened on (``"central"`` for the
        global system).
    subject:
        Identifier of the entity involved (transaction id, lock name,
        message type, ...).
    details:
        Free-form payload.
    """

    time: float
    category: str
    site: str
    subject: str
    details: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        detail = " ".join(f"{k}={v}" for k, v in self.details.items())
        return f"[{self.time:10.3f}] {self.site:<12} {self.category:<10} {self.subject} {detail}"


class TraceLog:
    """Append-only event log with simple query helpers."""

    __slots__ = ("_kernel", "records", "enabled", "_sink")

    def __init__(self, kernel: "Kernel"):
        self._kernel = kernel
        self.records: list[TraceRecord] = []
        self.enabled = True
        self._sink: Optional[Callable[[str], None]] = None

    def attach_sink(self, sink: Callable[[str], None]) -> None:
        """Stream formatted lines to ``sink`` as records are emitted.

        Formatting happens only while a sink is attached; remove it
        again with :meth:`detach_sink`.
        """
        self._sink = sink

    def detach_sink(self) -> None:
        self._sink = None

    def emit(self, category: str, site: str, subject: str, **details: Any) -> None:
        """Append a record stamped with the current simulated time."""
        if not self.enabled:
            return
        record = TraceRecord(self._kernel._now, category, site, subject, details)
        self.records.append(record)
        if self._sink is not None:
            self._sink(str(record))

    # -- queries -----------------------------------------------------------

    def select(
        self,
        category: Optional[str] = None,
        site: Optional[str] = None,
        subject: Optional[str] = None,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
    ) -> list[TraceRecord]:
        """Return records matching all the given filters, in time order."""
        out = []
        for record in self.records:
            if category is not None and record.category != category:
                continue
            if site is not None and record.site != site:
                continue
            if subject is not None and record.subject != subject:
                continue
            if predicate is not None and not predicate(record):
                continue
            out.append(record)
        return out

    def first(self, **filters: Any) -> Optional[TraceRecord]:
        """First record matching ``select`` filters, or ``None``."""
        matches = self.select(**filters)
        return matches[0] if matches else None

    def last(self, **filters: Any) -> Optional[TraceRecord]:
        """Last record matching ``select`` filters, or ``None``."""
        matches = self.select(**filters)
        return matches[-1] if matches else None

    def subjects(self, category: str) -> list[str]:
        """Distinct subjects seen for ``category``, in first-seen order."""
        seen: dict[str, None] = {}
        for record in self.records:
            if record.category == category:
                seen.setdefault(record.subject, None)
        return list(seen)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def dump(self, **filters: Any) -> str:
        """Human-readable rendering of matching records."""
        return "\n".join(str(r) for r in self.select(**filters))
