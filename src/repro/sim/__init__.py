"""Deterministic discrete-event simulation kernel.

All higher layers (storage, local databases, network, protocols) execute
as generator-based processes inside a :class:`~repro.sim.kernel.Kernel`.
Processes yield *effects* -- a :class:`~repro.sim.events.Delay`, a
:class:`~repro.sim.events.Future`, or another process -- and are resumed
by the kernel when the effect completes.  Ties in the event queue are
broken by insertion order, so a run is reproducible bit-for-bit given
the same seed.
"""

from repro.sim.events import AnyOf, Delay, Future
from repro.sim.kernel import Kernel
from repro.sim.process import Process
from repro.sim.rng import RandomStreams
from repro.sim.tracing import TraceLog, TraceRecord

__all__ = [
    "AnyOf",
    "Delay",
    "Future",
    "Kernel",
    "Process",
    "RandomStreams",
    "TraceLog",
    "TraceRecord",
]
