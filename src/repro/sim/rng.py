"""Named, reproducible random streams.

Every source of randomness in a simulation (workload arrivals, latency
jitter, fault injection, ...) draws from its own named stream so that
changing one consumer never perturbs another.  Stream seeds derive from
the master seed and the stream name via SHA-256, so they are stable
across Python versions and processes (unlike ``hash``).
"""

from __future__ import annotations

import hashlib
import random


class RandomStreams:
    """Factory of independent :class:`random.Random` streams."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def __repr__(self) -> str:
        return f"<RandomStreams seed={self.seed} streams={sorted(self._streams)}>"
