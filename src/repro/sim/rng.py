"""Named, reproducible random streams.

Every source of randomness in a simulation (workload arrivals, latency
jitter, fault injection, ...) draws from its own named stream so that
changing one consumer never perturbs another.  Stream seeds derive from
the master seed and the stream name via SHA-256, so they are stable
across Python versions and processes (unlike ``hash``).

Forked streams (:meth:`RandomStreams.fork`) give execution-exploring
consumers -- the ``repro.check`` model checker forks one child per
explored execution -- independent stream families.  The fork *path*
participates in the seed derivation with an unambiguous length-prefixed
encoding, so ``fork("a").stream("b:c")`` and ``fork("a:b").stream("c")``
and ``fork("a").fork("b").stream("c")`` all draw from provably distinct
streams: deriving from the concatenated text alone (the obvious
``":".join(...)`` scheme) would let different fork paths collide on the
same digest input.
"""

from __future__ import annotations

import hashlib
import random


class RandomStreams:
    """Factory of independent :class:`random.Random` streams."""

    def __init__(self, seed: int = 0, _path: tuple[str, ...] = ()):
        self.seed = seed
        self.path = tuple(_path)
        self._streams: dict[str, random.Random] = {}

    def _material(self, name: str) -> str:
        """Digest input for ``name`` under this fork path.

        The root derivation (empty path) is byte-for-byte the historic
        ``"{seed}:{name}"`` scheme so every existing golden trace keeps
        its randomness.  Forked derivations length-prefix each path
        segment and include the segment count, which makes the encoding
        prefix-free: no (path, name) pair can produce another pair's
        material, whatever separators appear inside the labels.
        """
        if not self.path:
            return f"{self.seed}:{name}"
        prefix = "".join(f"{len(part)}:{part}" for part in self.path)
        return f"{self.seed}|{len(self.path)}|{prefix}|{name}"

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        if name not in self._streams:
            digest = hashlib.sha256(self._material(name).encode()).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def fork(self, label: str) -> "RandomStreams":
        """An independent child family for one forked execution.

        Children share the master ``seed`` (so a fork is reproducible
        from ``(seed, path)`` alone) but never collide with the parent's
        streams or with any sibling fork's, per :meth:`_material`.
        """
        return RandomStreams(self.seed, (*self.path, str(label)))

    def __repr__(self) -> str:
        path = "/".join(self.path)
        return (
            f"<RandomStreams seed={self.seed}"
            + (f" path={path}" if path else "")
            + f" streams={sorted(self._streams)}>"
        )
