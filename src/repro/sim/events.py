"""Effects and synchronization primitives for the simulation kernel.

A process yields one of the following to the kernel:

* :class:`Delay` (or a bare ``int``/``float``) -- resume after simulated time.
* :class:`Future` -- resume when the future resolves; if it fails, the
  stored exception is thrown into the process.
* :class:`AnyOf` -- resume when the first of several futures resolves.
* another :class:`~repro.sim.process.Process` -- processes are futures,
  so yielding one joins it.

Futures sit on the hottest allocation path of the simulator (every
request/response pair and every blocking wait creates one), so the
implementation favours flat slots and lazy structures: the callback
list is only materialised when someone actually waits, and a process
waiting on a future is recorded as a bare ``(process, epoch)`` tuple
rather than a closure -- completion schedules the resumption step
directly, with no intermediate frame.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterable, Optional

#: Monotonic creation-order ids shared by every effect that can end up
#: inside an ordered container (the kernel's calendar queue, candidate
#: lists of the ``repro.check`` controlled scheduler).  The ids make
#: comparisons between two effects *total*: without them, two entries
#: tying on ``(time, priority)`` would fall through to Python's default
#: identity comparison, which raises for futures and -- worse for the
#: checker -- is not stable across runs, so schedule enumeration could
#: never revisit the same execution twice.
_effect_uids = itertools.count(1)


class Delay:
    """Effect: suspend the yielding process for ``duration`` time units."""

    __slots__ = ("duration", "_uid")

    def __init__(self, duration: float):
        if duration < 0:
            raise ValueError(f"negative delay: {duration}")
        self.duration = duration
        self._uid = next(_effect_uids)

    def __lt__(self, other: "Delay | Future") -> bool:
        return self._uid < other._uid

    def __repr__(self) -> str:
        return f"Delay({self.duration})"


class Future:
    """A one-shot container for a value or an exception.

    Futures are the kernel's only blocking primitive.  ``resolve`` and
    ``fail`` may each be called at most once; callbacks registered with
    :meth:`add_callback` run synchronously at resolution time (the
    kernel uses them to schedule process resumption at the current
    simulated instant).

    The waiter list (``_callbacks``) is ``None`` until the first waiter
    arrives -- most futures resolve with exactly one -- and holds two
    kinds of entry: plain callables, and ``(process, epoch)`` tuples
    planted by :meth:`_add_waiter`, which completion turns straight
    into a kernel-scheduled ``process._step`` without a closure.
    """

    __slots__ = ("_done", "_value", "_exception", "_callbacks", "label", "_uid")

    def __init__(self, label: str = ""):
        self._done = False
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._callbacks: Optional[list] = None
        self.label = label
        self._uid = next(_effect_uids)

    def __lt__(self, other: "Future | Delay") -> bool:
        """Total creation-order tie-break (see :data:`_effect_uids`)."""
        return self._uid < other._uid

    @property
    def done(self) -> bool:
        return self._done

    @property
    def value(self) -> Any:
        if not self._done:
            raise RuntimeError(f"future {self.label!r} not resolved yet")
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exception if self._done else None

    def resolve(self, value: Any = None) -> None:
        """Complete the future successfully with ``value``."""
        if self._done:
            raise RuntimeError(f"future {self.label!r} resolved twice")
        self._done = True
        self._value = value
        callbacks = self._callbacks
        if callbacks is not None:
            self._callbacks = None
            self._notify(callbacks)

    def fail(self, exception: BaseException) -> None:
        """Complete the future with an exception."""
        if self._done:
            raise RuntimeError(f"future {self.label!r} resolved twice")
        self._done = True
        self._exception = exception
        callbacks = self._callbacks
        if callbacks is not None:
            self._callbacks = None
            self._notify(callbacks)

    def _notify(self, callbacks: list) -> None:
        for entry in callbacks:
            if type(entry) is tuple:
                # A waiting process: schedule its resumption directly.
                process, epoch = entry
                if self._exception is not None:
                    process._kernel._schedule(0.0, process._step, epoch, None, self._exception)
                else:
                    process._kernel._schedule(0.0, process._step, epoch, self._value, None)
            else:
                entry(self)

    def add_callback(self, callback: Callable[["Future"], None]) -> None:
        """Run ``callback(self)`` on completion (immediately if done)."""
        if self._done:
            callback(self)
        elif self._callbacks is None:
            self._callbacks = [callback]
        else:
            self._callbacks.append(callback)

    def _add_waiter(self, process, epoch: int) -> None:
        """Register a process to be stepped when this future completes.

        The fast-path twin of :meth:`add_callback`: the waiter is a
        ``(process, epoch)`` tuple and completion schedules
        ``process._step(epoch, value, exc)`` without building a closure.
        If the future is already done, the step is scheduled now -- at
        the current instant, preserving the one-event resumption hop a
        pending future would have cost.
        """
        if self._done:
            if self._exception is not None:
                process._kernel._schedule(0.0, process._step, epoch, None, self._exception)
            else:
                process._kernel._schedule(0.0, process._step, epoch, self._value, None)
        elif self._callbacks is None:
            self._callbacks = [(process, epoch)]
        else:
            self._callbacks.append((process, epoch))

    def _reset(self) -> None:
        """Return the future to its pristine pending state.

        Only the kernel's timeout-timer free-list calls this, and only
        when the queue entry being skipped was provably the last
        reference (see ``docs/performance.md``).  The uid is refreshed
        so recycled futures keep strictly increasing creation order.
        """
        self._done = False
        self._value = None
        self._exception = None
        self._callbacks = None
        self._uid = next(_effect_uids)

    def __repr__(self) -> str:
        state = "done" if self._done else "pending"
        return f"<Future {self.label!r} {state}>"


class AnyOf:
    """Effect: wait for the first of several futures.

    The yielding process resumes with a ``(index, value)`` pair for the
    first future that resolves.  If the winning future failed, its
    exception is thrown into the process.  Later resolutions of the
    losing futures are ignored.
    """

    __slots__ = ("futures",)

    def __init__(self, futures: Iterable[Future]):
        self.futures = list(futures)
        if not self.futures:
            raise ValueError("AnyOf needs at least one future")

    def attach(self, race: Future) -> None:
        """Wire the race so ``race`` resolves with the first winner."""

        def make_callback(index: int) -> Callable[[Future], None]:
            def callback(completed: Future) -> None:
                if race.done:
                    return
                if completed.exception is not None:
                    race.fail(completed.exception)
                else:
                    race.resolve((index, completed._value))

            return callback

        for i, future in enumerate(self.futures):
            future.add_callback(make_callback(i))

    def __repr__(self) -> str:
        return f"AnyOf({len(self.futures)} futures)"
