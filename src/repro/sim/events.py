"""Effects and synchronization primitives for the simulation kernel.

A process yields one of the following to the kernel:

* :class:`Delay` (or a bare ``int``/``float``) -- resume after simulated time.
* :class:`Future` -- resume when the future resolves; if it fails, the
  stored exception is thrown into the process.
* :class:`AnyOf` -- resume when the first of several futures resolves.
* another :class:`~repro.sim.process.Process` -- processes are futures,
  so yielding one joins it.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterable, Optional

#: Monotonic creation-order ids shared by every effect that can end up
#: inside an ordered container (the kernel's heap, candidate lists of
#: the ``repro.check`` controlled scheduler).  The ids make comparisons
#: between two effects *total*: without them, two entries tying on
#: ``(time, priority)`` would fall through to Python's default identity
#: comparison, which raises for futures and -- worse for the checker --
#: is not stable across runs, so schedule enumeration could never
#: revisit the same execution twice.
_effect_uids = itertools.count(1)


class Delay:
    """Effect: suspend the yielding process for ``duration`` time units."""

    __slots__ = ("duration", "_uid")

    def __init__(self, duration: float):
        if duration < 0:
            raise ValueError(f"negative delay: {duration}")
        self.duration = duration
        self._uid = next(_effect_uids)

    def __lt__(self, other: "Delay | Future") -> bool:
        return self._uid < other._uid

    def __repr__(self) -> str:
        return f"Delay({self.duration})"


class Future:
    """A one-shot container for a value or an exception.

    Futures are the kernel's only blocking primitive.  ``resolve`` and
    ``fail`` may each be called at most once; callbacks registered with
    :meth:`add_callback` run synchronously at resolution time (the
    kernel uses them to schedule process resumption at the current
    simulated instant).
    """

    __slots__ = ("_done", "_value", "_exception", "_callbacks", "label", "_uid")

    def __init__(self, label: str = ""):
        self._done = False
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._callbacks: list[Callable[[Future], None]] = []
        self.label = label
        self._uid = next(_effect_uids)

    def __lt__(self, other: "Future | Delay") -> bool:
        """Total creation-order tie-break (see :data:`_effect_uids`)."""
        return self._uid < other._uid

    @property
    def done(self) -> bool:
        return self._done

    @property
    def value(self) -> Any:
        if not self._done:
            raise RuntimeError(f"future {self.label!r} not resolved yet")
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exception if self._done else None

    def resolve(self, value: Any = None) -> None:
        """Complete the future successfully with ``value``."""
        self._complete(value, None)

    def fail(self, exception: BaseException) -> None:
        """Complete the future with an exception."""
        self._complete(None, exception)

    def _complete(self, value: Any, exception: Optional[BaseException]) -> None:
        if self._done:
            raise RuntimeError(f"future {self.label!r} resolved twice")
        self._done = True
        self._value = value
        self._exception = exception
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def add_callback(self, callback: Callable[[Future], None]) -> None:
        """Run ``callback(self)`` on completion (immediately if done)."""
        if self._done:
            callback(self)
        else:
            self._callbacks.append(callback)

    def __repr__(self) -> str:
        state = "done" if self._done else "pending"
        return f"<Future {self.label!r} {state}>"


class AnyOf:
    """Effect: wait for the first of several futures.

    The yielding process resumes with a ``(index, value)`` pair for the
    first future that resolves.  If the winning future failed, its
    exception is thrown into the process.  Later resolutions of the
    losing futures are ignored.
    """

    __slots__ = ("futures",)

    def __init__(self, futures: Iterable[Future]):
        self.futures = list(futures)
        if not self.futures:
            raise ValueError("AnyOf needs at least one future")

    def attach(self, race: Future) -> None:
        """Wire the race so ``race`` resolves with the first winner."""

        def make_callback(index: int) -> Callable[[Future], None]:
            def callback(completed: Future) -> None:
                if race.done:
                    return
                if completed.exception is not None:
                    race.fail(completed.exception)
                else:
                    race.resolve((index, completed._value))

            return callback

        for i, future in enumerate(self.futures):
            future.add_callback(make_callback(i))

    def __repr__(self) -> str:
        return f"AnyOf({len(self.futures)} futures)"
