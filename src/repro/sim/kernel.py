"""The discrete-event simulation kernel.

The kernel owns a priority queue of ``(time, sequence, fn, args)``
entries.  The sequence number breaks ties in insertion order, making
every run deterministic.  Processes are spawned with :meth:`Kernel.spawn`
and stepped by callbacks the kernel schedules on their behalf.

Scheduling stores the callable and its arguments separately instead of
wrapping them in a closure: the hot paths (message delivery, process
resumption) schedule millions of events per run, and a per-event
closure allocation is pure overhead.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import KernelStopped, SimulationError
from repro.sim.events import Future
from repro.sim.process import Process
from repro.sim.rng import RandomStreams
from repro.sim.tracing import TraceLog


class Kernel:
    """Deterministic discrete-event scheduler.

    Parameters
    ----------
    seed:
        Master seed for the kernel's named random streams
        (:attr:`rng`).  Two kernels created with the same seed and fed
        the same process structure produce identical traces.
    """

    __slots__ = (
        "_queue", "_sequence", "_now", "_stopped", "rng", "trace",
        "failures", "_fire_timer", "scheduler",
    )

    def __init__(self, seed: int = 0):
        self._queue: list[tuple[float, int, Callable[..., None], tuple]] = []
        self._sequence = 0
        self._now = 0.0
        self._stopped = False
        self.rng = RandomStreams(seed)
        self.trace = TraceLog(self)
        self.failures: list[tuple[Process, BaseException]] = []
        # Bound exactly once: the run loop recognises cancelled timers
        # by identity (``fn is self._fire_timer``), and a fresh bound
        # method per access would never compare identical.
        self._fire_timer = self._resolve_timer
        # Optional controlled-scheduling hook (the ``repro.check``
        # exploration layer).  ``None`` -- the default, and the only
        # value production code ever sees -- takes the historic fast
        # run loop below, untouched event for event.  A scheduler
        # object with a ``pick(kernel, batch)`` method instead routes
        # every step through :meth:`_run_controlled`, which offers the
        # scheduler the whole frontier of same-time events to order.
        self.scheduler = None

    # -- time ----------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    # -- scheduling ------------------------------------------------------------

    def _schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        if self._stopped:
            raise KernelStopped("kernel already stopped")
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self._sequence += 1
        heapq.heappush(self._queue, (self._now + delay, self._sequence, callback, args))

    def call_at(self, time: float, callback: Callable[..., None], *args: Any) -> None:
        """Run ``callback(*args)`` at absolute simulated ``time`` (>= now)."""
        self._schedule(time - self._now, callback, *args)

    def call_at_bulk(
        self, entries: Iterable[tuple[float, Callable[..., None], tuple]]
    ) -> None:
        """Schedule many ``(time, fn, args)`` entries in one pass.

        Entries share one stopped-check and push straight onto the heap
        without building a closure per event -- the cheap way to seed a
        large simulation (e.g. one timer per transaction in a sweep).
        """
        if self._stopped:
            raise KernelStopped("kernel already stopped")
        queue = self._queue
        now = self._now
        push = heapq.heappush
        sequence = self._sequence
        for time, fn, args in entries:
            if time < now:
                raise SimulationError(f"time {time} is in the past (now={now})")
            sequence += 1
            push(queue, (time, sequence, fn, args))
        self._sequence = sequence

    def spawn(self, generator: Generator[Any, Any, Any], name: str = "") -> Process:
        """Create and start a process from ``generator``."""
        process = Process(self, generator, name=name)
        process._start()
        return process

    def timer(self, delay: float, label: str = "timer") -> Future:
        """Return a future that resolves ``delay`` time units from now.

        The firing callback is a reused bound method with the future as
        its argument -- no per-timer closure -- and resolving is guarded
        so a future already completed elsewhere (e.g. the losing arm of
        a timeout race) is left alone.
        """
        future = Future(label=label)
        self._schedule(delay, self._fire_timer, future)
        return future

    def _resolve_timer(self, future: Future) -> None:
        if not future._done:
            future.resolve(self._now)

    # -- running ---------------------------------------------------------------

    def run(self, until: Optional[float] = None, raise_failures: bool = True) -> float:
        """Run until the event queue drains or simulated time ``until``.

        Returns the final simulated time.  If ``raise_failures`` is
        true, the first exception that escaped a process nobody joined
        is re-raised after the run, so bugs never pass silently.
        """
        if self.scheduler is not None:
            return self._run_controlled(until, raise_failures)
        queue = self._queue
        pop = heapq.heappop
        fire_timer = self._fire_timer
        if until is None:
            while queue:
                time, _seq, fn, args = pop(queue)
                if fn is fire_timer and args[0]._done:
                    continue  # cancelled timer: skip without advancing the clock
                self._now = time
                fn(*args)
        else:
            while queue:
                if queue[0][0] > until:
                    self._now = until
                    break
                time, _seq, fn, args = pop(queue)
                if fn is fire_timer and args[0]._done:
                    continue
                self._now = time
                fn(*args)
        if raise_failures:
            for process, exc in self.failures:
                if not process._observed:
                    raise exc
        return self._now

    def _run_controlled(self, until: Optional[float], raise_failures: bool) -> float:
        """Run loop with an external scheduling strategy in charge.

        At every step the *frontier* -- all queued events sharing the
        earliest timestamp, in scheduling (sequence) order, cancelled
        timers dropped -- is handed to ``scheduler.pick(kernel, batch)``,
        which returns the entry to fire next.  The rest of the frontier
        goes back on the heap, so an event the scheduler defers stays
        eligible until actually fired.  Firing an event may grow the
        same-time frontier (zero-delay follow-ups); they join the next
        step's batch, which keeps causality: an event can never run
        before the event that scheduled it.

        Events at *different* timestamps are never reordered -- the
        checker explores interleavings, not timings -- so every
        controlled execution is also a legal execution of the default
        loop under some tie-break.
        """
        queue = self._queue
        pop = heapq.heappop
        push = heapq.heappush
        fire_timer = self._fire_timer
        scheduler = self.scheduler
        while queue:
            time = queue[0][0]
            if until is not None and time > until:
                self._now = until
                break
            batch = []
            while queue and queue[0][0] == time:
                entry = pop(queue)
                if entry[2] is fire_timer and entry[3][0]._done:
                    continue  # cancelled timer: never offered as a choice
                batch.append(entry)
            if not batch:
                continue
            chosen = scheduler.pick(self, batch) if len(batch) > 1 else batch[0]
            for entry in batch:
                if entry is not chosen:
                    push(queue, entry)
            self._now = time
            chosen[2](*chosen[3])
        if raise_failures:
            for process, exc in self.failures:
                if not process._observed:
                    raise exc
        return self._now

    def stop(self) -> None:
        """Discard all pending events and refuse further scheduling.

        For tearing down a simulation with self-perpetuating processes
        (periodic checkpointers, serve loops) when their state no longer
        matters.
        """
        self._queue.clear()
        self._stopped = True

    def _on_process_failure(self, process: Process, exc: BaseException) -> None:
        self.failures.append((process, exc))

    # -- helpers usable from inside processes -----------------------------------

    def sleep(self, duration: float) -> Generator[Any, Any, None]:
        """``yield from kernel.sleep(d)`` suspends the caller for ``d``."""
        yield duration

    def wait_with_timeout(
        self, future: Future, timeout: float
    ) -> Generator[Any, Any, tuple[bool, Any]]:
        """Wait for ``future`` or a timeout, whichever comes first.

        Returns ``(True, value)`` if the future resolved in time and
        ``(False, None)`` on timeout.  A failed future re-raises inside
        the caller.
        """
        from repro.sim.events import AnyOf

        timer = self.timer(timeout, label="timeout")
        index, value = yield AnyOf([future, timer])
        if index == 0:
            # Cancel the now-stale timeout timer: resolving it here lets
            # the run loop discard the queued firing without advancing
            # the clock, so completed rounds leave no timer debris that
            # could stretch the simulated end time.
            if not timer._done:
                timer.resolve(None)
            return True, value
        return False, None

    def __repr__(self) -> str:
        return f"<Kernel t={self._now} queued={len(self._queue)}>"
