"""The discrete-event simulation kernel.

The kernel dispatches ``(time, sequence, fn, args)`` entries in
``(time, sequence)`` order.  The sequence number breaks ties in
insertion order, making every run deterministic.  Processes are spawned
with :meth:`Kernel.spawn` and stepped by callbacks the kernel schedules
on their behalf.

Scheduling stores the callable and its arguments separately instead of
wrapping them in a closure: the hot paths (message delivery, process
resumption) schedule millions of events per run, and a per-event
closure allocation is pure overhead.

Dispatch structure -- a two-tier calendar queue
-----------------------------------------------

Earlier revisions kept one global binary heap and paid a ``heappush`` +
``heappop`` (each ``O(log n)`` with tuple comparisons) for *every*
event.  Profiles of the sharded benchmarks showed that most events
share their timestamp with the previous one -- batching windows,
zero-delay resumptions and fixed-latency deliveries all produce wide
same-timestamp frontiers -- so almost all of that heap churn re-sorted
events whose relative order was already fully determined by their
sequence numbers.

The queue is now a calendar of *slots*, one per distinct pending
timestamp:

* ``_buckets`` maps each pending timestamp to a slot-local FIFO list of
  entries.  Scheduling into an existing slot is a dict hit plus a list
  append -- O(1), no comparisons.  Within a slot, FIFO order *is*
  sequence order, because sequence numbers increase monotonically.
* ``_times`` is the overflow tier: a min-heap over the distinct pending
  timestamps (each appears exactly once -- slot existence in
  ``_buckets`` gates the push).  Only the *first* event of a timestamp
  pays a heap operation; the frontier behind it rides the slot for
  free.

The run loop drains one slot at a time by cursor, so events scheduled
*at the current instant while the slot drains* (zero-delay follow-ups)
append to the live slot and fire in the same drain, exactly where the
heap would have placed them.  Dispatch order is byte-identical to the
old heap loop: ``(time, sequence)`` ascending, cancelled timers skipped
without advancing the clock.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import KernelStopped, SimulationError
from repro.sim.events import Future
from repro.sim.process import Process
from repro.sim.rng import RandomStreams
from repro.sim.tracing import TraceLog


class Kernel:
    """Deterministic discrete-event scheduler.

    Parameters
    ----------
    seed:
        Master seed for the kernel's named random streams
        (:attr:`rng`).  Two kernels created with the same seed and fed
        the same process structure produce identical traces.
    """

    __slots__ = (
        "_buckets", "_times", "_sequence", "_now", "_stopped", "rng", "trace",
        "failures", "_fire_timer", "_fire_pooled_timer", "_timer_pool",
        "scheduler", "events_dispatched",
    )

    def __init__(self, seed: int = 0):
        # Calendar queue: slot-local FIFO lists keyed by exact pending
        # timestamp, plus a heap over the distinct timestamps.  A
        # timestamp is in ``_times`` iff it has a slot in ``_buckets``
        # that the run loop has not started draining.
        self._buckets: dict[float, list[tuple[float, int, Callable[..., None], tuple]]] = {}
        self._times: list[float] = []
        self._sequence = 0
        self._now = 0.0
        self._stopped = False
        self.rng = RandomStreams(seed)
        self.trace = TraceLog(self)
        self.failures: list[tuple[Process, BaseException]] = []
        # Bound exactly once: the run loop recognises cancelled timers
        # by identity (``fn is self._fire_timer``), and a fresh bound
        # method per access would never compare identical.
        self._fire_timer = self._resolve_timer
        self._fire_pooled_timer = self._resolve_pooled_timer
        # Free-list for the timeout timers of :meth:`wait_with_timeout`.
        # Those futures never escape the kernel, so the cancelled-timer
        # skip in the run loop -- the last reference holder -- can
        # recycle them (see docs/performance.md for the invariant).
        self._timer_pool: list[Future] = []
        # Events fired by the run loops (skipped cancelled timers are
        # queue maintenance, not events).  The perf benchmarks divide
        # this by wall-clock time for an honest simulator throughput.
        self.events_dispatched = 0
        # Optional controlled-scheduling hook (the ``repro.check``
        # exploration layer).  ``None`` -- the default, and the only
        # value production code ever sees -- takes the fast run loop
        # below.  A scheduler object with a ``pick(kernel, batch)``
        # method instead routes every step through
        # :meth:`_run_controlled`, which offers the scheduler the whole
        # frontier of same-time events to order.
        self.scheduler = None

    # -- time ----------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def queued(self) -> int:
        """Number of pending (not yet dispatched) entries."""
        return sum(len(bucket) for bucket in self._buckets.values())

    # -- scheduling ------------------------------------------------------------

    def _schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        if self._stopped:
            raise KernelStopped("kernel already stopped")
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        time = self._now + delay
        self._sequence = sequence = self._sequence + 1
        bucket = self._buckets.get(time)
        if bucket is not None:
            bucket.append((time, sequence, callback, args))
        else:
            self._buckets[time] = [(time, sequence, callback, args)]
            heappush(self._times, time)

    def call_at(self, time: float, callback: Callable[..., None], *args: Any) -> None:
        """Run ``callback(*args)`` at absolute simulated ``time`` (>= now)."""
        self._schedule(time - self._now, callback, *args)

    def call_at_bulk(
        self, entries: Iterable[tuple[float, Callable[..., None], tuple]]
    ) -> None:
        """Schedule many ``(time, fn, args)`` entries in one pass.

        Entries share one stopped-check and go straight into the
        calendar without building a closure per event -- the cheap way
        to seed a large simulation (e.g. one timer per transaction in a
        sweep).
        """
        if self._stopped:
            raise KernelStopped("kernel already stopped")
        buckets = self._buckets
        times = self._times
        now = self._now
        sequence = self._sequence
        for time, fn, args in entries:
            if time < now:
                raise SimulationError(f"time {time} is in the past (now={now})")
            sequence += 1
            bucket = buckets.get(time)
            if bucket is not None:
                bucket.append((time, sequence, fn, args))
            else:
                buckets[time] = [(time, sequence, fn, args)]
                heappush(times, time)
        self._sequence = sequence

    def spawn(self, generator: Generator[Any, Any, Any], name: str = "") -> Process:
        """Create and start a process from ``generator``."""
        process = Process(self, generator, name=name)
        process._start()
        return process

    def timer(self, delay: float, label: str = "timer") -> Future:
        """Return a future that resolves ``delay`` time units from now.

        The firing callback is a reused bound method with the future as
        its argument -- no per-timer closure -- and resolving is guarded
        so a future already completed elsewhere (e.g. the losing arm of
        a timeout race) is left alone.
        """
        future = Future(label=label)
        self._schedule(delay, self._fire_timer, future)
        return future

    def _pooled_timer(self, delay: float) -> Future:
        """A timeout timer drawn from the kernel's free-list.

        Only for callers that never leak the future to user code (the
        :meth:`wait_with_timeout` race): the run loop recycles these
        futures when it skips their cancelled firing.
        """
        pool = self._timer_pool
        future = pool.pop() if pool else Future(label="timeout")
        self._schedule(delay, self._fire_pooled_timer, future)
        return future

    def _resolve_timer(self, future: Future) -> None:
        if not future._done:
            future.resolve(self._now)

    def _resolve_pooled_timer(self, future: Future) -> None:
        # A pooled timer that actually fires (the timeout won) is NOT
        # recycled: the waiting frame still inspects it afterwards.
        # Only the cancelled-skip path in the run loops recycles.
        if not future._done:
            future.resolve(self._now)

    # -- running ---------------------------------------------------------------

    def run(self, until: Optional[float] = None, raise_failures: bool = True) -> float:
        """Run until the event queue drains or simulated time ``until``.

        Returns the final simulated time.  If ``raise_failures`` is
        true, the first exception that escaped a process nobody joined
        is re-raised after the run, so bugs never pass silently.
        """
        if self.scheduler is not None:
            return self._run_controlled(until, raise_failures)
        buckets = self._buckets
        times = self._times
        fire_timer = self._fire_timer
        fire_pooled = self._fire_pooled_timer
        timer_pool = self._timer_pool
        dispatched = 0
        try:
            while times:
                time = times[0]
                if until is not None and time > until:
                    self._now = until
                    break
                heappop(times)
                bucket = buckets[time]
                cursor = 0
                try:
                    # Drain the slot by cursor: zero-delay follow-ups
                    # append to the live list and fire in this drain.
                    while cursor < len(bucket):
                        entry = bucket[cursor]
                        cursor += 1
                        fn = entry[2]
                        if fn is fire_timer:
                            if entry[3][0]._done:
                                continue  # cancelled: skip, clock untouched
                        elif fn is fire_pooled:
                            future = entry[3][0]
                            if future._done:
                                # Cancelled pooled timeout: the queue
                                # entry was the last reference -- safe
                                # to recycle (docs/performance.md).
                                future._reset()
                                timer_pool.append(future)
                                continue
                        self._now = time
                        dispatched += 1
                        fn(*entry[3])
                finally:
                    if cursor >= len(bucket):
                        buckets.pop(time, None)
                    else:
                        # An exception escaped mid-slot: keep the
                        # undispatched tail so a subsequent run resumes
                        # exactly where the old heap loop would have.
                        del bucket[:cursor]
                        if buckets.get(time) is bucket:
                            heappush(times, time)
        finally:
            self.events_dispatched += dispatched
        if raise_failures:
            for process, exc in self.failures:
                if not process._observed:
                    raise exc
        return self._now

    def _run_controlled(self, until: Optional[float], raise_failures: bool) -> float:
        """Run loop with an external scheduling strategy in charge.

        At every step the *frontier* -- all queued events sharing the
        earliest timestamp, in scheduling (sequence) order, cancelled
        timers dropped -- is handed to ``scheduler.pick(kernel, batch)``,
        which returns the entry to fire next.  The rest of the frontier
        stays in its slot, so an event the scheduler defers remains
        eligible until actually fired.  Firing an event may grow the
        same-time frontier (zero-delay follow-ups); they join the next
        step's batch, which keeps causality: an event can never run
        before the event that scheduled it.

        Events at *different* timestamps are never reordered -- the
        checker explores interleavings, not timings -- so every
        controlled execution is also a legal execution of the default
        loop under some tie-break.
        """
        buckets = self._buckets
        times = self._times
        fire_timer = self._fire_timer
        fire_pooled = self._fire_pooled_timer
        scheduler = self.scheduler
        while times:
            time = times[0]
            if until is not None and time > until:
                self._now = until
                break
            bucket = buckets.get(time)
            batch = []
            if bucket:
                for entry in bucket:
                    fn = entry[2]
                    if fn is fire_timer or fn is fire_pooled:
                        if entry[3][0]._done:
                            if fn is fire_pooled:
                                entry[3][0]._reset()
                                self._timer_pool.append(entry[3][0])
                            continue  # cancelled timer: never offered
                    batch.append(entry)
            if not batch:
                heappop(times)
                buckets.pop(time, None)
                continue
            chosen = scheduler.pick(self, batch) if len(batch) > 1 else batch[0]
            bucket[:] = [entry for entry in batch if entry is not chosen]
            self._now = time
            self.events_dispatched += 1
            chosen[2](*chosen[3])
        if raise_failures:
            for process, exc in self.failures:
                if not process._observed:
                    raise exc
        return self._now

    def stop(self) -> None:
        """Discard all pending events and refuse further scheduling.

        For tearing down a simulation with self-perpetuating processes
        (periodic checkpointers, serve loops) when their state no longer
        matters.
        """
        # Clear the slot lists in place: a run loop draining one of
        # them holds a direct reference and must observe the discard.
        for bucket in self._buckets.values():
            bucket.clear()
        self._buckets.clear()
        self._times.clear()
        self._stopped = True

    def _on_process_failure(self, process: Process, exc: BaseException) -> None:
        self.failures.append((process, exc))

    # -- helpers usable from inside processes -----------------------------------

    def sleep(self, duration: float) -> Generator[Any, Any, None]:
        """``yield from kernel.sleep(d)`` suspends the caller for ``d``."""
        yield duration

    def wait_with_timeout(
        self, future: Future, timeout: float
    ) -> Generator[Any, Any, tuple[bool, Any]]:
        """Wait for ``future`` or a timeout, whichever comes first.

        Returns ``(True, value)`` if the future resolved in time and
        ``(False, None)`` on timeout.  A failed future re-raises inside
        the caller.
        """
        timer = self._pooled_timer(timeout)
        # Hand-wired two-arm race instead of a generic AnyOf effect:
        # this is the hottest wait in the system (every request/response
        # pair takes it), and the AnyOf path costs an effect object plus
        # one closure per arm.  Resolution order and semantics are
        # identical: first arm wins, later completions are ignored.
        race = Future(label="timeout-race")

        def arm(completed: Future) -> None:
            if not race._done:
                if completed._exception is not None:
                    race.fail(completed._exception)
                else:
                    race.resolve(
                        (0 if completed is future else 1, completed._value)
                    )

        future.add_callback(arm)
        timer.add_callback(arm)
        index, value = yield race
        if index == 0:
            # Cancel the now-stale timeout timer: resolving it here lets
            # the run loop discard the queued firing without advancing
            # the clock, so completed rounds leave no timer debris that
            # could stretch the simulated end time.
            if not timer._done:
                timer.resolve(None)
            return True, value
        return False, None

    def __repr__(self) -> str:
        return f"<Kernel t={self._now} queued={self.queued}>"
