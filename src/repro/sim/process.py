"""Generator-based simulation processes.

A :class:`Process` wraps a generator.  Each ``yield`` hands an effect to
the kernel (see :mod:`repro.sim.events`); the kernel resumes the
generator when the effect completes.  A process is itself a
:class:`~repro.sim.events.Future` completing with the generator's
return value, so processes can be joined by yielding them.

Interruption (used for deadlock victims, lock timeouts and site
crashes) throws :class:`~repro.errors.ProcessInterrupted` into the
generator at its current suspension point.  A *wait epoch* counter
invalidates any resumption that was already scheduled for the
interrupted wait, so a process is never resumed twice for one yield.

Resumptions are scheduled as ``(method, args)`` pairs on the kernel's
queue rather than closures: stepping is the single hottest path in the
simulator and a closure per yield costs an allocation per event.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.errors import ProcessInterrupted, SimulationError
from repro.sim.events import AnyOf, Delay, Future

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Kernel

ProcessGenerator = Generator[Any, Any, Any]


class Process(Future):
    """A running simulation process; also a future of its return value."""

    __slots__ = ("_kernel", "_generator", "_epoch", "_started", "_finished", "_observed")

    _ids = 0

    def __init__(self, kernel: "Kernel", generator: ProcessGenerator, name: str = ""):
        Process._ids += 1
        super().__init__(label=name or f"process-{Process._ids}")
        self._kernel = kernel
        self._generator = generator
        self._epoch = 0
        self._started = False
        self._finished = False
        self._observed = False

    @property
    def name(self) -> str:
        return self.label

    def add_callback(self, callback) -> None:  # type: ignore[override]
        """Mark the process as observed so its failures count as handled."""
        self._observed = True
        super().add_callback(callback)

    def _add_waiter(self, process: "Process", epoch: int) -> None:  # type: ignore[override]
        """Joining a process observes it, like :meth:`add_callback`."""
        self._observed = True
        Future._add_waiter(self, process, epoch)

    @property
    def alive(self) -> bool:
        return not self._finished

    # -- lifecycle ---------------------------------------------------------

    def _start(self) -> None:
        """Schedule the first step; called by the kernel at spawn time."""
        if self._started:
            raise SimulationError(f"{self.label} started twice")
        self._started = True
        self._kernel._schedule(0.0, self._step, self._epoch, None, None)

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`ProcessInterrupted` into the process.

        A no-op on a finished process.  The interrupt is delivered at
        the current simulated instant; any resumption scheduled for the
        wait being interrupted becomes stale and is dropped.
        """
        if self._finished:
            return
        self._epoch += 1
        exc = ProcessInterrupted(cause)
        self._kernel._schedule(0.0, self._step, self._epoch, None, exc)

    # -- stepping ----------------------------------------------------------

    def _step(
        self,
        epoch: int,
        send_value: Any,
        throw_exc: Optional[BaseException],
    ) -> None:
        if self._finished or epoch != self._epoch:
            return  # stale resumption from an interrupted wait
        try:
            if throw_exc is not None:
                effect = self._generator.throw(throw_exc)
            else:
                effect = self._generator.send(send_value)
        except StopIteration as stop:
            self._finish_ok(stop.value)
            return
        except ProcessInterrupted as exc:
            # An unhandled interrupt terminates the process quietly: the
            # interrupter is responsible for the cleanup story.
            self._finish_ok(exc)
            return
        except Exception as exc:
            self._finish_err(exc)
            return
        # Inline fast paths for the overwhelmingly common effects -- a
        # bare delay or a (process-)future -- before falling back to
        # the generic handler.
        cls = effect.__class__
        if cls is float or cls is int:
            self._epoch += 1
            self._kernel._schedule(effect, self._step, self._epoch, None, None)
            return
        if cls is Future or cls is Process:
            self._epoch = epoch = self._epoch + 1
            effect._add_waiter(self, epoch)
            return
        self._handle_effect(effect)

    def _handle_effect(self, effect: Any) -> None:
        self._epoch += 1
        epoch = self._epoch
        if isinstance(effect, (int, float)):
            effect = Delay(float(effect))
        if isinstance(effect, Delay):
            self._kernel._schedule(effect.duration, self._step, epoch, None, None)
        elif isinstance(effect, AnyOf):
            race = Future(label=f"{self.label}:anyof")
            effect.attach(race)
            race._add_waiter(self, epoch)
        elif isinstance(effect, Future):
            # Resumption is scheduled at the current instant when the
            # future completes, preserving FIFO order with other events
            # scheduled "now" (see Future._add_waiter).
            effect._add_waiter(self, epoch)
        else:
            self._finish_err(
                SimulationError(f"{self.label} yielded unsupported effect {effect!r}")
            )

    def _finish_ok(self, value: Any) -> None:
        self._finished = True
        self._generator.close()
        self.resolve(value)

    def _finish_err(self, exc: BaseException) -> None:
        self._finished = True
        self._generator.close()
        self._kernel._on_process_failure(self, exc)
        self.fail(exc)

    def __repr__(self) -> str:
        state = "finished" if self._finished else "alive"
        return f"<Process {self.label} {state}>"
