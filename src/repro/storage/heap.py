"""Heap files: key -> page placement for one table.

Keys are placed on pages by hashing over a fixed set of buckets, except
where a key has been *pinned* to a specific page -- the mechanism used
to reproduce Figure 8 of the paper, where objects ``x`` and ``y`` live
on the same page ``p``.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Any, Generator, Iterator, Optional

from repro.storage.page import Page

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.storage.buffer import BufferPool
    from repro.storage.disk import StableDisk


def _stable_hash(value: Any) -> int:
    digest = hashlib.sha256(repr(value).encode()).digest()
    return int.from_bytes(digest[:8], "big")


class HeapFile:
    """The pages of one table, addressed through the buffer pool."""

    def __init__(
        self,
        table: str,
        disk: "StableDisk",
        buffer_pool: "BufferPool",
        first_page_id: int,
        bucket_count: int = 8,
    ):
        self.table = table
        self._disk = disk
        self._buffer = buffer_pool
        self.bucket_count = bucket_count
        self._page_ids = list(range(first_page_id, first_page_id + bucket_count))
        self._pinned_keys: dict[Any, int] = {}
        # key -> page id placement memo: the sha256 placement hash is
        # pure per key, and every record access recomputes it otherwise.
        # Invalidated by pin_key_to_page.
        self._placement: dict[Any, int] = {}

    @property
    def page_ids(self) -> list[int]:
        return list(self._page_ids)

    def initialize(self) -> Generator[Any, Any, None]:
        """Create the empty bucket pages on disk (done at table creation)."""
        for page_id in self._page_ids:
            if not self._disk.has_page(page_id):
                yield from self._disk.write_page(Page(page_id, self.table))

    # -- placement ----------------------------------------------------------

    def pin_key_to_page(self, key: Any, bucket_index: int) -> None:
        """Force ``key`` onto bucket ``bucket_index`` (Figure 8 setups)."""
        if not 0 <= bucket_index < self.bucket_count:
            raise ValueError(f"bucket {bucket_index} out of range")
        self._pinned_keys[key] = self._page_ids[bucket_index]
        self._placement.pop(key, None)

    def page_of(self, key: Any) -> int:
        """The page id storing ``key``."""
        page_id = self._placement.get(key)
        if page_id is not None:
            return page_id
        if key in self._pinned_keys:
            page_id = self._pinned_keys[key]
        else:
            page_id = self._page_ids[_stable_hash(key) % self.bucket_count]
        self._placement[key] = page_id
        return page_id

    # -- record access (generators: consume simulated I/O time) ---------------

    def read(self, key: Any) -> Generator[Any, Any, Optional[Any]]:
        """Value stored under ``key`` or ``None``."""
        page = yield from self._buffer.fetch(self.page_of(key))
        return page.get(key)

    def exists(self, key: Any) -> Generator[Any, Any, bool]:
        page = yield from self._buffer.fetch(self.page_of(key))
        return key in page

    def write(self, key: Any, value: Any, lsn: int) -> Generator[Any, Any, None]:
        """Insert or overwrite ``key`` and stamp the page with ``lsn``."""
        page_id = self.page_of(key)
        page = yield from self._buffer.fetch(page_id)
        page.put(key, value, lsn)
        self._buffer.mark_dirty(page_id, lsn)

    def delete(self, key: Any, lsn: int) -> Generator[Any, Any, None]:
        """Remove ``key`` and stamp the page with ``lsn``."""
        page_id = self.page_of(key)
        page = yield from self._buffer.fetch(page_id)
        page.remove(key, lsn)
        self._buffer.mark_dirty(page_id, lsn)

    def scan(self) -> Generator[Any, Any, list[tuple[Any, Any]]]:
        """All (key, value) pairs, in stable key order."""
        rows: list[tuple[Any, Any]] = []
        for page_id in self._page_ids:
            page = yield from self._buffer.fetch(page_id)
            rows.extend(page.records.items())
        rows.sort(key=lambda kv: repr(kv[0]))
        return rows

    def __iter__(self) -> Iterator[int]:
        return iter(self._page_ids)

    def __repr__(self) -> str:
        return f"<HeapFile {self.table} buckets={self.bucket_count}>"
