"""Write-ahead log.

Logical (record-level) logging with before/after images, ARIES-style
compensation records for undo, and fuzzy checkpoints.  The
:class:`LogManager` keeps a volatile tail; :meth:`LogManager.force`
pushes everything up to a target LSN to the stable disk.  The WAL rule
(force before page flush) is enforced by the buffer pool.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from operator import attrgetter
from typing import TYPE_CHECKING, Any, Generator, Optional

_record_lsn = attrgetter("lsn")

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.storage.disk import StableDisk


@dataclass(frozen=True)
class LogRecord:
    """Base class for all log records; ``lsn`` is assigned on append."""

    lsn: int
    txn_id: str
    prev_lsn: int


@dataclass(frozen=True)
class BeginRecord(LogRecord):
    """Transaction start."""


@dataclass(frozen=True)
class UpdateRecord(LogRecord):
    """Insert/update/delete of one record, with both images.

    ``before is None`` encodes an insert; ``after is None`` encodes a
    delete; both set encode an in-place update.
    """

    table: str = ""
    key: Any = None
    before: Any = None
    after: Any = None
    page_id: int = -1


@dataclass(frozen=True)
class CompensationRecord(LogRecord):
    """CLR written while undoing ``undo_of_lsn``; redo-only."""

    table: str = ""
    key: Any = None
    after: Any = None
    page_id: int = -1
    undo_of_lsn: int = -1
    undo_next_lsn: int = -1


@dataclass(frozen=True)
class PrepareRecord(LogRecord):
    """Ready state reached (only written by *modified*, preparable TMs).

    A transaction with a forced prepare record but no commit/abort
    record is *in doubt* after a crash: recovery reinstates it in the
    ready state with its locks, waiting for the global decision.
    ``gtxn_id`` survives the crash so the communication manager can
    re-correlate the in-doubt transaction with its global transaction.
    """

    gtxn_id: Optional[str] = None


@dataclass(frozen=True)
class CommitRecord(LogRecord):
    """Transaction commit; forcing this record is the commit point."""


@dataclass(frozen=True)
class AbortRecord(LogRecord):
    """Transaction rollback completed."""


@dataclass(frozen=True)
class CheckpointRecord(LogRecord):
    """Fuzzy checkpoint: active transactions and their last LSNs."""

    active_txns: dict[str, int] = field(default_factory=dict)


class LogManager:
    """Per-site write-ahead log with a volatile tail.

    LSNs start at 1 and grow monotonically.  ``flushed_lsn`` is the
    highest LSN on stable storage; everything above it is lost in a
    crash.

    With ``group_commit_window > 0`` (and a kernel to keep time),
    concurrent :meth:`force` calls are batched: the first caller waits
    out the window gathering co-committers, then one disk write hardens
    everything -- the classic group-commit trade of commit latency for
    force throughput.
    """

    def __init__(
        self,
        disk: "StableDisk",
        kernel=None,
        group_commit_window: float = 0.0,
    ):
        self._disk = disk
        self._kernel = kernel
        self.group_commit_window = group_commit_window
        self._next_lsn = 1
        self._tail: list[LogRecord] = []
        self._index: dict[int, LogRecord] = {}
        self.flushed_lsn = 0
        self.appended = 0
        self.forced = 0
        self._group_waiters: list = []  # (lsn, Future)
        self._group_leader_active = False

    @property
    def next_lsn(self) -> int:
        return self._next_lsn

    def append(self, make_record) -> LogRecord:
        """Append a record built by ``make_record(lsn)``; returns it.

        ``make_record`` receives the assigned LSN so frozen dataclasses
        can be constructed in one step.
        """
        lsn = self._next_lsn
        self._next_lsn += 1
        record = make_record(lsn)
        assert record.lsn == lsn, "record must carry the assigned LSN"
        self._tail.append(record)
        self._index[lsn] = record
        self.appended += 1
        return record

    def record_at(self, lsn: int) -> LogRecord:
        """The record with the given LSN (volatile index, rebuilt on restart)."""
        return self._index[lsn]

    def force(self, upto_lsn: Optional[int] = None) -> Generator[Any, Any, None]:
        """Harden the tail up to ``upto_lsn`` (default: everything).

        With group commit enabled the call may wait out the gathering
        window and ride a co-committer's disk write.
        """
        if upto_lsn is None:
            upto_lsn = self._next_lsn - 1
        if upto_lsn <= self.flushed_lsn:
            return
        if self.group_commit_window > 0 and self._kernel is not None:
            yield from self._group_force(upto_lsn)
            return
        yield from self._force_now(upto_lsn)

    def _force_now(self, upto_lsn: int) -> Generator[Any, Any, None]:
        tail = self._tail
        if not tail:
            return
        if tail[-1].lsn <= upto_lsn:
            # Whole-tail force -- the overwhelmingly common case (a
            # commit forces everything appended so far): snapshot with
            # one slice instead of an attribute-access filter pass.
            to_flush = tail[:]
        else:
            to_flush = [r for r in tail if r.lsn <= upto_lsn]
            if not to_flush:
                return
        # The volatile tail is pruned only after the disk write lands:
        # a crash during the write must still wipe these records.
        yield from self._disk.append_log(to_flush)
        self.forced += 1
        self.flushed_lsn = to_flush[-1].lsn
        # The tail is LSN-ordered, so the flushed prefix is contiguous.
        tail = self._tail
        cut = bisect_right(tail, upto_lsn, key=_record_lsn)
        if cut:
            self._tail = tail[cut:]

    def _group_force(self, upto_lsn: int) -> Generator[Any, Any, None]:
        """Join (or lead) the current commit group."""
        from repro.sim.events import Future

        ticket = Future(label="group-commit")
        self._group_waiters.append((upto_lsn, ticket))
        if self._group_leader_active:
            yield ticket  # the leader hardens our LSN; crash -> raises
            return
        self._group_leader_active = True
        try:
            while self._group_waiters:
                yield self.group_commit_window  # gather co-committers
                group, self._group_waiters = self._group_waiters, []
                if not group:
                    # A crash emptied the group while we slept.
                    from repro.errors import SiteCrashed

                    raise SiteCrashed(f"{self._disk.site} crashed mid-window")
                target = max(lsn for lsn, _ in group)
                try:
                    yield from self._force_now(target)
                except BaseException as exc:
                    for _, waiter in group:
                        if not waiter.done:
                            waiter.fail(exc)
                    raise
                for _, waiter in group:
                    if not waiter.done:
                        waiter.resolve(None)
        finally:
            self._group_leader_active = False

    def tail_records(self) -> list[LogRecord]:
        """Volatile records not yet forced (lost on crash)."""
        return list(self._tail)

    def crash(self) -> None:
        """Drop the volatile tail; stable records stay on the disk."""
        self._tail = []
        waiters, self._group_waiters = self._group_waiters, []
        if waiters:
            from repro.errors import SiteCrashed

            for _, waiter in waiters:
                if not waiter.done:
                    waiter.fail(SiteCrashed(f"{self._disk.site} crashed"))
        self._group_leader_active = False

    def rebuild_after_crash(self) -> None:
        """Reset LSN allocation to continue after the stable prefix."""
        stable = self._disk.stable_log()
        self._next_lsn = (stable[-1].lsn + 1) if stable else 1
        self.flushed_lsn = stable[-1].lsn if stable else 0
        self._tail = []
        self._index = {record.lsn: record for record in stable}

    def truncate_stable(self, safe_lsn: int) -> int:
        """Drop stable records below ``safe_lsn`` (checkpointing).

        The caller guarantees that no undo chain of an active
        transaction and no unflushed page effect reaches below
        ``safe_lsn``.  Returns the number of records dropped.
        """
        stable = self._disk.stable_log()
        keep_from = 0
        while keep_from < len(stable) and stable[keep_from].lsn < safe_lsn:
            keep_from += 1
        self._disk.truncate_log(keep_from)
        for record in stable[:keep_from]:
            self._index.pop(record.lsn, None)
        return keep_from

    def __repr__(self) -> str:
        return f"<LogManager next={self._next_lsn} flushed={self.flushed_lsn} tail={len(self._tail)}>"
