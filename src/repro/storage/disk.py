"""Simulated stable storage.

The disk is the only state that survives a site crash: page images that
the buffer pool flushed, and the forced prefix of the write-ahead log.
Reads and writes consume simulated time according to
:class:`StorageConfig`, so experiments see realistic relative costs
(log forces dominate commit latency, buffer misses dominate reads).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.errors import PageNotFound
from repro.storage.page import Page

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Kernel


@dataclass(frozen=True)
class StorageConfig:
    """Simulated device timings (arbitrary time units).

    Defaults keep a 1 : 10 CPU : I/O ratio, which is enough for the
    protocol comparisons (absolute values cancel out of every ratio the
    experiments report).
    """

    page_read_time: float = 1.0
    page_write_time: float = 1.0
    log_force_time: float = 1.0
    cpu_op_time: float = 0.1


class StableDisk:
    """Crash-surviving storage for one site.

    Holds deep-copied page images (as last flushed) and the stable log
    records (as last forced).  A crash never touches this object; the
    owning :class:`~repro.localdb.engine.LocalDatabase` simply discards
    its volatile structures and rebuilds from here.
    """

    def __init__(self, kernel: "Kernel", site: str, config: Optional[StorageConfig] = None):
        from repro.sim.sync import FifoLock

        self._kernel = kernel
        self.site = site
        self.config = config or StorageConfig()
        # The log is one serial device: concurrent forces queue.  (Data
        # pages are left unserialized, modelling striped data disks.)
        self._log_device = FifoLock(name=f"{site}:log-device")
        self._pages: dict[int, Page] = {}
        self._log: list[Any] = []
        self._meta: dict[str, Any] = {}
        self.page_reads = 0
        self.page_writes = 0
        self.log_forces = 0
        # Opt-in detailed tracing: emit a "log_force" trace record per
        # force so the span layer can build log-force spans.  Off by
        # default -- metrics-only runs keep traces byte-identical.
        self.trace_forces = False
        # Incremented by the owning engine at crash time: an I/O that was
        # in flight when the crash happened does not take effect.
        self.crash_epoch = 0

    def _guard(self) -> int:
        return self.crash_epoch

    def _check(self, epoch: int) -> None:
        if epoch != self.crash_epoch:
            from repro.errors import SiteCrashed

            raise SiteCrashed(f"{self.site} crashed during I/O")

    # -- pages ---------------------------------------------------------------

    def has_page(self, page_id: int) -> bool:
        return page_id in self._pages

    def read_page(self, page_id: int) -> Generator[Any, Any, Page]:
        """Return a private copy of the stable image of ``page_id``."""
        if page_id not in self._pages:
            raise PageNotFound(f"{self.site}: page {page_id}")
        epoch = self._guard()
        yield self.config.page_read_time
        self._check(epoch)
        self.page_reads += 1
        return self._pages[page_id].snapshot()

    def write_page(self, page: Page) -> Generator[Any, Any, None]:
        """Persist a deep copy of ``page`` (buffer-pool flush path)."""
        snapshot = page.snapshot()
        epoch = self._guard()
        yield self.config.page_write_time
        self._check(epoch)
        self.page_writes += 1
        self._pages[snapshot.page_id] = snapshot

    def stable_page(self, page_id: int) -> Optional[Page]:
        """Direct (timeless) access for assertions and recovery analysis."""
        page = self._pages.get(page_id)
        return page.snapshot() if page is not None else None

    # -- log -------------------------------------------------------------------

    def append_log(self, records: list[Any]) -> Generator[Any, Any, None]:
        """Force ``records`` onto the stable log (one synchronous write).

        The log device is serial: concurrent forces queue behind each
        other -- which is what makes group commit worthwhile.
        """
        epoch = self._guard()
        start = self._kernel.now if self.trace_forces else 0.0
        yield from self._log_device.acquire()
        try:
            self._check(epoch)
            yield self.config.log_force_time
            self._check(epoch)
            self.log_forces += 1
            self._log.extend(records)
            if self.trace_forces and self._kernel.trace.enabled:
                self._kernel.trace.emit(
                    "log_force", self.site, f"force-{self.log_forces}",
                    txn=getattr(records[-1], "txn_id", None),
                    records=len(records), start=start,
                )
        finally:
            self._release_log_device()

    def _release_log_device(self) -> None:
        try:
            self._log_device.release()
        except RuntimeError:
            pass  # reset by a crash while we held it

    def stable_log(self) -> list[Any]:
        """The forced log prefix (what recovery will see)."""
        return list(self._log)

    def truncate_log(self, keep_from_index: int) -> None:
        """Drop records before ``keep_from_index`` (checkpointing)."""
        self._log = self._log[keep_from_index:]

    # -- durable metadata (catalog) ------------------------------------------

    def set_meta(self, key: str, value: Any) -> None:
        """Synchronously persist a catalog entry (table definitions)."""
        self._meta[key] = value

    def get_meta(self, key: str, default: Any = None) -> Any:
        return self._meta.get(key, default)

    def meta_keys(self) -> list[str]:
        return list(self._meta)

    def __repr__(self) -> str:
        return f"<StableDisk {self.site} pages={len(self._pages)} log={len(self._log)}>"
