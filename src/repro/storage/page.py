"""Pages: the unit of disk transfer and of L0 locking.

A page stores the records of one table whose keys hash (or are pinned
explicitly, as in the paper's Figure 8 where ``x`` and ``y`` share page
``p``) to it.  ``page_lsn`` records the LSN of the last update applied,
which makes recovery redo idempotent.
"""

from __future__ import annotations

import copy
from typing import Any, Optional


class Page:
    """An in-memory page image."""

    __slots__ = ("page_id", "table", "records", "page_lsn")

    def __init__(self, page_id: int, table: str):
        self.page_id = page_id
        self.table = table
        self.records: dict[Any, Any] = {}
        self.page_lsn = 0

    def get(self, key: Any) -> Optional[Any]:
        """Return the value stored under ``key`` or ``None``."""
        return self.records.get(key)

    def put(self, key: Any, value: Any, lsn: int) -> None:
        """Insert or overwrite ``key`` and stamp the page with ``lsn``."""
        self.records[key] = value
        self.page_lsn = max(self.page_lsn, lsn)

    def remove(self, key: Any, lsn: int) -> None:
        """Delete ``key`` if present and stamp the page with ``lsn``."""
        self.records.pop(key, None)
        self.page_lsn = max(self.page_lsn, lsn)

    def snapshot(self) -> "Page":
        """Deep copy, used when flushing to the stable disk."""
        clone = Page(self.page_id, self.table)
        clone.records = copy.deepcopy(self.records)
        clone.page_lsn = self.page_lsn
        return clone

    def __contains__(self, key: Any) -> bool:
        return key in self.records

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:
        return (
            f"<Page {self.page_id} table={self.table} "
            f"records={len(self.records)} lsn={self.page_lsn}>"
        )
