"""Storage substrate: pages, stable disk, write-ahead log, buffer pool.

The substrate models exactly the volatile/stable split the paper's
recovery arguments depend on:

* :class:`~repro.storage.disk.StableDisk` survives crashes (flushed
  pages and the forced log prefix).
* :class:`~repro.storage.buffer.BufferPool` and the unforced log tail
  are volatile and vanish on a crash.

Pages carry a ``page_lsn`` so redo during recovery is idempotent
(ARIES-style "repeat history up to the page LSN").
"""

from repro.storage.buffer import BufferPool
from repro.storage.disk import StableDisk, StorageConfig
from repro.storage.heap import HeapFile
from repro.storage.page import Page
from repro.storage.wal import (
    AbortRecord,
    BeginRecord,
    CheckpointRecord,
    CommitRecord,
    CompensationRecord,
    LogManager,
    LogRecord,
    PrepareRecord,
    UpdateRecord,
)

__all__ = [
    "AbortRecord",
    "BeginRecord",
    "BufferPool",
    "CheckpointRecord",
    "CommitRecord",
    "CompensationRecord",
    "HeapFile",
    "LogManager",
    "LogRecord",
    "Page",
    "PrepareRecord",
    "StableDisk",
    "StorageConfig",
    "UpdateRecord",
]
