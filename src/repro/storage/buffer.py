"""Buffer pool with steal / no-force policy and the WAL rule.

*Steal*: a dirty page may be evicted (flushed) before its transaction
commits -- which is why undo information must be logged.  *No-force*:
commit does not flush pages -- which is why redo information must be
logged.  Before flushing a dirty page the pool forces the log up to the
page's LSN (the write-ahead rule).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.errors import BufferPoolFull
from repro.storage.page import Page

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.storage.disk import StableDisk
    from repro.storage.wal import LogManager


class BufferPool:
    """Fixed-capacity page cache with LRU replacement."""

    def __init__(self, disk: "StableDisk", log: "LogManager", capacity: int = 64):
        if capacity < 1:
            raise ValueError("buffer pool needs at least one frame")
        self._disk = disk
        self._log = log
        self.capacity = capacity
        self._frames: OrderedDict[int, Page] = OrderedDict()
        self._dirty: set[int] = set()
        # Per dirty page: the LSN of the update that first dirtied it
        # (the recovery LSN) -- log truncation must never pass the
        # minimum of these.
        self._rec_lsn: dict[int, int] = {}
        self._pins: dict[int, int] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- fetch / pin -------------------------------------------------------------

    def fetch(self, page_id: int) -> Generator[Any, Any, Page]:
        """Return the in-memory image of ``page_id``, reading on a miss."""
        if page_id in self._frames:
            self.hits += 1
            self._frames.move_to_end(page_id)
            return self._frames[page_id]
        self.misses += 1
        yield from self._make_room()
        page = yield from self._disk.read_page(page_id)
        # A concurrent fetch may have loaded the page while we slept on
        # the disk read; keep the already-resident image in that case.
        if page_id in self._frames:
            self._frames.move_to_end(page_id)
            return self._frames[page_id]
        self._frames[page_id] = page
        return page

    def create(self, page: Page) -> Generator[Any, Any, Page]:
        """Register a brand-new page (no disk read)."""
        yield from self._make_room()
        self._frames[page.page_id] = page
        self._dirty.add(page.page_id)
        self._rec_lsn.setdefault(page.page_id, 0)
        return page

    def pin(self, page_id: int) -> None:
        """Prevent eviction of ``page_id`` until unpinned."""
        self._pins[page_id] = self._pins.get(page_id, 0) + 1

    def unpin(self, page_id: int) -> None:
        count = self._pins.get(page_id, 0)
        if count <= 1:
            self._pins.pop(page_id, None)
        else:
            self._pins[page_id] = count - 1

    def mark_dirty(self, page_id: int, lsn: int = 0) -> None:
        """Record that the resident image differs from the disk image.

        ``lsn`` is the log record responsible; the first one becomes
        the page's recovery LSN.
        """
        self._dirty.add(page_id)
        self._rec_lsn.setdefault(page_id, lsn)

    def is_dirty(self, page_id: int) -> bool:
        return page_id in self._dirty

    def min_rec_lsn(self) -> Optional[int]:
        """Oldest recovery LSN over all dirty pages (``None`` if clean)."""
        return min(self._rec_lsn.values()) if self._rec_lsn else None

    def resident(self, page_id: int) -> bool:
        return page_id in self._frames

    # -- eviction / flushing -------------------------------------------------------

    def _make_room(self) -> Generator[Any, Any, None]:
        while len(self._frames) >= self.capacity:
            victim_id = self._choose_victim()
            yield from self._evict(victim_id)

    def _choose_victim(self) -> int:
        for page_id in self._frames:  # OrderedDict iterates LRU-first
            if self._pins.get(page_id, 0) == 0:
                return page_id
        raise BufferPoolFull(f"all {self.capacity} frames pinned")

    def _evict(self, page_id: int) -> Generator[Any, Any, None]:
        page = self._frames[page_id]
        if page_id in self._dirty:
            clean = yield from self._write_back(page_id, page)
            if not clean:
                # Re-dirtied while the flush was in flight: the frame
                # holds updates the disk image lacks -- do not evict.
                return
        if page_id in self._frames:
            del self._frames[page_id]
        self.evictions += 1

    def flush_page(self, page_id: int) -> Generator[Any, Any, None]:
        """Write one dirty page back without evicting it."""
        if page_id in self._dirty and page_id in self._frames:
            yield from self._write_back(page_id, self._frames[page_id])

    def _write_back(self, page_id: int, page: Page) -> Generator[Any, Any, bool]:
        """Flush one dirty page; returns True if it ended up clean.

        The write takes simulated time, during which another process
        may update the page; in that case the dirty flag (and recovery
        LSN) must survive, or the concurrent update would be lost.
        """
        stamp = page.page_lsn
        # Freeze the image *now*: updates landing while the force/write
        # below are in flight must not leak onto disk ahead of their
        # own log records (that would break the WAL rule).
        frozen = page.snapshot()
        # WAL rule: the log covering this image must be stable first.
        yield from self._log.force(stamp)
        yield from self._disk.write_page(frozen)
        if page.page_lsn != stamp:
            return False  # re-dirtied mid-flush; stays dirty
        self._dirty.discard(page_id)
        self._rec_lsn.pop(page_id, None)
        return True

    def flush_all(self) -> Generator[Any, Any, None]:
        """Write back every dirty page (checkpoint helper)."""
        for page_id in list(self._dirty):
            yield from self.flush_page(page_id)

    def crash(self) -> None:
        """Lose all volatile frames (site crash)."""
        self._frames.clear()
        self._dirty.clear()
        self._rec_lsn.clear()
        self._pins.clear()

    def __repr__(self) -> str:
        return (
            f"<BufferPool {len(self._frames)}/{self.capacity} frames, "
            f"{len(self._dirty)} dirty>"
        )
