"""The local communication manager (paper §2, Figure 1).

One of these sits *on top of* each existing database system.  It
listens on the network for global calls, drives the local transaction
manager through its (unchanged) interface, and packages status and data
into reply messages.  All protocol behaviour that the paper places at
the local side lives here:

* answering ``prepare`` for the commit-after protocol immediately after
  the last action, *while the local transaction is still running*;
* committing the local transaction before the global decision for the
  commit-before protocol (``finish_subtxn`` / ``execute_l0``);
* executing redo subtransactions and inverse (undo) transactions;
* the commit-marker relation (:data:`~repro.core.redo.COMMITLOG_TABLE`)
  that makes local commit and its propagation atomic when
  ``log_placement == "indb"``.

The manager's own memory is volatile: a site crash empties it, which is
exactly the hazard experiment EXP-A2 explores.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.errors import (
    DatabaseError,
    NodeUnreachable,
    SiteCrashed,
    TransactionAborted,
)
from repro.core.redo import COMMITLOG_TABLE
from repro.localdb.txn import LocalTxnState
from repro.mlt.actions import Operation
from repro.net.message import Message
from repro.sim.sync import FifoLock

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.localdb.interface import StandardTMInterface
    from repro.net.network import Network
    from repro.net.node import Node
    from repro.sim.kernel import Kernel


class LocalCommunicationManager:
    """Protocol adapter between the network and one local TM interface."""

    def __init__(
        self,
        kernel: "Kernel",
        network: "Network",
        node: "Node",
        interface: "StandardTMInterface",
        log_placement: str = "indb",
        max_l0_retries: int = 10,
    ):
        if log_placement not in ("indb", "volatile"):
            raise ValueError(f"unknown log placement {log_placement!r}")
        self.kernel = kernel
        self.network = network
        self.node = node
        self.interface = interface
        self.log_placement = log_placement
        self.max_l0_retries = max_l0_retries
        self._retry_rng = kernel.rng.stream(f"cm-retry:{node.name}")
        # gtxn_id -> local txn id of the current subtransaction.
        self._subtxns: dict[str, str] = {}
        # Volatile outcome memory: marker key -> "committed" | "aborted".
        self._outcomes: dict[str, str] = {}
        # Request-level duplicate suppression: request msg_id -> the
        # exact reply sent (None if the handler finished without
        # replying).  A redelivered request re-sends the cached reply
        # instead of re-running the handler; a request still being
        # handled is dropped (the sender's retransmission covers it).
        # Volatile by design -- after a crash the durable commit
        # markers, not this cache, make redelivery safe.
        self._processed_replies: dict[int, Optional[Message]] = {}
        self._in_flight: set[int] = set()
        self.duplicate_requests = 0
        # Per-global-transaction mutex: a retried decide and an
        # in-flight redo (or two redo retries) must never interleave on
        # the same subtransaction.
        self._gtxn_locks: dict[str, FifoLock] = {}
        # Hot-path caches: resolved handler per message kind and the
        # "{site}:{kind}" process name per kind, so the serve loop does
        # not pay a getattr probe plus an f-string per request.
        self._handlers: dict[str, Any] = {}
        self._handler_names: dict[str, str] = {}
        self._serve_process = kernel.spawn(self._serve(), name=f"comm:{node.name}")
        self.redo_executions = 0
        self.undo_executions = 0
        # Data-plane placement: the federation installs the shared
        # DataPlane here so forward executions can fence stale epochs.
        # ``None`` (the default) skips the check entirely.
        self.dataplane = None
        # Hooks fired after this manager votes "ready" -- the window in
        # which the paper's erroneous aborts happen; the fault injector
        # subscribes here.  Each hook receives (gtxn_id, txn_id, protocol).
        self.on_ready_voted: list = []

    @property
    def site(self) -> str:
        return self.node.name

    # ------------------------------------------------------------------
    # Startup / crash hooks
    # ------------------------------------------------------------------

    def setup(self) -> Generator[Any, Any, None]:
        """Create the commit-marker relation (in-DB log placement)."""
        if self.log_placement == "indb" and COMMITLOG_TABLE not in self.interface._engine.catalog:
            yield from self.interface._engine.create_table(COMMITLOG_TABLE, 2)

    def on_crash(self) -> None:
        """The site failed: all communication-manager memory is lost."""
        self._subtxns.clear()
        self._outcomes.clear()
        self._processed_replies.clear()
        self._in_flight.clear()
        for lock in self._gtxn_locks.values():
            lock.reset(SiteCrashed(f"{self.site} crashed"))
        self._gtxn_locks.clear()

    def _gtxn_lock(self, gtxn: Optional[str]) -> FifoLock:
        key = gtxn or "?"
        if key not in self._gtxn_locks:
            self._gtxn_locks[key] = FifoLock(name=f"{self.site}:gtxn:{key}")
        return self._gtxn_locks[key]

    def on_restart(self) -> Generator[Any, Any, None]:
        """Respawn the serve loop after the node came back."""
        self._serve_process = self.kernel.spawn(
            self._serve(), name=f"comm:{self.node.name}"
        )
        return
        yield  # pragma: no cover - generator protocol

    # ------------------------------------------------------------------
    # Serve loop
    # ------------------------------------------------------------------

    def _serve(self) -> Generator[Any, Any, None]:
        while True:
            try:
                message = yield from self.node.recv()
            except NodeUnreachable:
                return
            if message.msg_id in self._processed_replies:
                # Redelivered request already handled: re-send the same
                # reply (the first one may have been lost) and do NOT
                # re-run the handler.
                self.duplicate_requests += 1
                cached = self._processed_replies[message.msg_id]
                if cached is not None and not self.node.crashed:
                    self.network.send(cached)
                continue
            if message.msg_id in self._in_flight:
                # Redelivered while the first delivery is still being
                # handled; the reply (or the sender's retry machinery)
                # covers it.
                self.duplicate_requests += 1
                continue
            kind = message.kind
            name = self._handler_names.get(kind)
            if name is None:
                name = self._handler_names[kind] = f"{self.site}:{kind}"
            self.kernel.spawn(self._handle(message), name=name)

    #: Request kinds that mutate a subtransaction's fate; retries of
    #: these must not interleave with each other on one gtxn.
    _SERIALIZED_KINDS = frozenset(
        ("decide", "redo_subtxn", "undo_subtxn", "finish_subtxn",
         "execute_l0", "prepare")
    )

    def _handle(self, message: Message) -> Generator[Any, Any, None]:
        kind = message.kind
        handler = self._handlers.get(kind)
        if handler is None:
            handler = getattr(self, f"_on_{kind}", None)
            if handler is None:
                self._reply(message, "error", error=f"unknown kind {kind}")
                return
            self._handlers[kind] = handler
        lock = (
            self._gtxn_lock(message.gtxn_id)
            if kind in self._SERIALIZED_KINDS
            else None
        )
        self._in_flight.add(message.msg_id)
        try:
            if lock is not None:
                yield from lock.acquire()
            yield from handler(message)
            # Handler ran to completion: remember that (and the reply
            # _reply recorded, if any) so a redelivery is answered from
            # the cache instead of re-executed.
            self._processed_replies.setdefault(message.msg_id, None)
        except (SiteCrashed, NodeUnreachable):
            return  # the site died mid-request; the central will time out
        finally:
            self._in_flight.discard(message.msg_id)
            if lock is not None and lock.locked:
                try:
                    lock.release()
                except RuntimeError:
                    pass  # reset by a crash while we held it

    def _reply(self, message: Message, kind: str, **payload: Any) -> None:
        if self.node.crashed:
            return
        reply = message.reply(kind, **payload)
        self._processed_replies[message.msg_id] = reply
        self.network.send(reply)

    # ------------------------------------------------------------------
    # Subtransaction lifecycle (2PC and commit-after)
    # ------------------------------------------------------------------

    def _on_begin_subtxn(self, message: Message) -> Generator[Any, Any, None]:
        gtxn = message.gtxn_id
        assert gtxn is not None
        txn_id = self.interface.begin(gtxn_id=gtxn)
        self._subtxns[gtxn] = txn_id
        self._reply(message, "subtxn_begun", txn_id=txn_id)
        return
        yield  # pragma: no cover - generator protocol

    def _stale_epoch(self, operation: "Operation") -> bool:
        """Is this forward execution fenced by a superseded epoch?

        Only data-plane-routed operations carry a partition/epoch
        stamp.  A membership change (promotion, eviction, rejoin) bumps
        the partition epoch, and every execution still stamped with the
        old one is rejected here -- aborted-but-retriable, so the
        coordinator re-decomposes against the current membership.
        Decision, undo and recovery traffic is never fenced: it must
        reach exactly the sites the forward execution recorded.
        """
        dataplane = self.dataplane
        if (
            dataplane is None
            or not dataplane.fencing
            or operation.partition is None
            or operation.epoch is None
        ):
            return False
        if operation.epoch == dataplane.epoch_of(operation.partition):
            return False
        dataplane.stale_rejections += 1
        return True

    def _on_execute_op(self, message: Message) -> Generator[Any, Any, None]:
        """Run one operation inside the gtxn's open subtransaction.

        A ``finish_marker`` in the payload piggybacks the commit-before
        local commit on this (last) data message: after the operation
        succeeds the local transaction is committed right here and the
        outcome rides back on the ``op_done`` reply -- no dedicated
        ``finish_subtxn`` round-trip.
        """
        gtxn = message.gtxn_id
        operation: Operation = message.payload["op"]
        if self._stale_epoch(operation):
            self._reply(message, "op_failed", aborted=True, reason="stale epoch")
            return
        finish_marker = message.payload.get("finish_marker")
        txn_id = self._subtxns.get(gtxn or "")
        if txn_id is None:
            self._reply(message, "op_failed", aborted=True, reason="no subtransaction")
            return
        try:
            value, before = yield from self._apply_op(txn_id, operation)
        except TransactionAborted as exc:
            self._reply(message, "op_failed", aborted=True, reason=str(exc.reason))
            return
        except DatabaseError as exc:
            self._reply(message, "op_failed", aborted=False, reason=str(exc))
            return
        if message.payload.get("vote_request"):
            # One-phase commit: the vote rides on this (last) data
            # reply.  A successful last operation *is* the yes vote --
            # the local stays running (logless: no prepare force), so
            # the §3.2 erroneous-abort window opens here.
            self._reply(message, "op_done", value=value, before=before, vote="ready")
            for hook in self.on_ready_voted:
                hook(gtxn, txn_id, "one_phase")
            return
        if finish_marker is None:
            self._reply(message, "op_done", value=value, before=before)
            return
        outcome = yield from self._finish_local(txn_id, finish_marker)
        self._reply(message, "op_done", value=value, before=before, outcome=outcome)

    def _finish_local(
        self, txn_id: str, marker_key: Optional[str]
    ) -> Generator[Any, Any, str]:
        """Commit the local transaction now; returns the final outcome."""
        status = self.interface.status(txn_id)
        if status is LocalTxnState.COMMITTED:
            return "committed"
        if status is LocalTxnState.ABORTED:
            self._note_outcome(marker_key, "aborted")
            return "aborted"
        try:
            if marker_key is not None and self.log_placement == "indb":
                yield from self._write_marker(txn_id, marker_key)
            yield from self.interface.commit(txn_id)
        except TransactionAborted:
            self._note_outcome(marker_key, "aborted")
            return "aborted"
        self._note_outcome(marker_key, "committed")
        return "committed"

    def _on_prepare(self, message: Message) -> Generator[Any, Any, None]:
        """Vote request.

        * ``protocol == "2pc"``: drive the modified TM into the ready
          state (forces the log).  Raises if the interface is standard
          -- the paper's central impossibility.
        * ``protocol == "short_commit"``: like 2PC, then immediately
          release read locks and downgrade write locks -- the
          Short-Commit early release at commit-phase start.
        * ``protocol == "after"``: answer immediately after the last
          action; the local transaction stays *running* (§3.2), so an
          autonomous abort can still hit it later.
        """
        gtxn = message.gtxn_id
        protocol = message.payload.get("protocol", "2pc")
        if protocol == "before":
            yield from self._prepare_before(message)
            return
        txn_id = self._subtxns.get(gtxn or "")
        if txn_id is None:
            self._reply(message, "vote", vote="abort", reason="no subtransaction")
            return
        status = self.interface.status(txn_id)
        if status is not LocalTxnState.RUNNING:
            self._reply(message, "vote", vote="abort", reason=f"state={status}")
            return
        if protocol in ("2pc", "paxos", "short_commit"):
            if message.payload.get("allow_readonly"):
                # Read-only optimization ([ML 83]): a participant that
                # wrote nothing commits right away and drops out of
                # phase 2 -- no prepare force, no decision message.
                txn = self.interface._engine.txn(txn_id)
                if not txn.write_set:
                    try:
                        yield from self.interface.commit(txn_id)
                    except TransactionAborted as exc:
                        self._reply(message, "vote", vote="abort", reason=str(exc.reason))
                        return
                    self._reply(message, "vote", vote="readonly")
                    return
            try:
                yield from self.interface.prepare(txn_id)
            except TransactionAborted as exc:
                self._reply(message, "vote", vote="abort", reason=str(exc.reason))
                return
            if protocol == "short_commit":
                # Entering the commit phase: read locks go, write locks
                # drop to shared (exposing the prepared values to
                # readers under the engine's cascade guard).
                self.interface.short_release(
                    txn_id,
                    downgrade=message.payload.get("short_release") != "all",
                )
        self._reply(message, "vote", vote="ready")
        for hook in self.on_ready_voted:
            hook(gtxn, txn_id, protocol)

    def _prepare_before(self, message: Message) -> Generator[Any, Any, None]:
        """Final-state inquiry of the commit-before protocol (§3.3).

        Locals committed (or aborted) on their own; the answer reports
        the final state.  A still-running subtransaction that finished
        its actions is committed now (self-healing after a lost
        ``finish_subtxn``); a forgotten one is resolved through the
        durable commit marker, defaulting to aborted.
        """
        gtxn = message.gtxn_id
        marker_key = message.payload.get("marker_key")
        # How to resolve a subtransaction that is still running: commit
        # it (it finished its actions; the finish message was lost) or
        # abort it (the global execution failed before it finished).
        resolve = message.payload.get("resolve", "commit")
        txn_id = self._subtxns.get(gtxn or "")
        if txn_id is not None:
            status = self.interface.status(txn_id)
            if status is LocalTxnState.RUNNING and resolve == "abort":
                yield from self._safe_abort(txn_id)
                status = self.interface.status(txn_id)
            elif status is LocalTxnState.RUNNING:
                try:
                    if marker_key is not None and self.log_placement == "indb":
                        yield from self._write_marker(txn_id, marker_key)
                    yield from self.interface.commit(txn_id)
                    status = LocalTxnState.COMMITTED
                except TransactionAborted:
                    status = LocalTxnState.ABORTED
            if status is LocalTxnState.COMMITTED:
                self._note_outcome(marker_key, "committed")
                self._reply(message, "vote", vote="committed")
            else:
                self._note_outcome(marker_key, "aborted")
                self._reply(message, "vote", vote="aborted")
            return
        if self.log_placement == "indb" and marker_key is not None:
            marker = yield from self._read_marker(marker_key)
            vote = "committed" if marker is not None else "aborted"
            self._reply(message, "vote", vote=vote)
            return
        vote = self._outcomes.get(marker_key or "", "aborted")
        self._reply(message, "vote", vote="committed" if vote == "committed" else "aborted")

    def _on_decide(self, message: Message) -> Generator[Any, Any, None]:
        """Global decision for an open subtransaction (2PC / commit-after)."""
        outcome = yield from self._decide_one(
            message.gtxn_id,
            message.payload["decision"],
            message.payload.get("marker_key"),
        )
        if message.payload["decision"] != "commit" and message.payload.get("noreply"):
            return
        self._reply(message, "finished", outcome=outcome)

    def _on_decide_group(self, message: Message) -> Generator[Any, Any, None]:
        """A batch of decisions from the central group-decision pipeline.

        Entries are applied in order inside this one handler process;
        with a local ``group_commit_window`` their commit forces
        coalesce too.  Each entry takes the per-gtxn lock so a batched
        decide still cannot interleave with an in-flight redo of the
        same transaction.
        """
        outcomes: dict[str, str] = {}
        for entry in message.payload["decisions"]:
            gtxn = entry["gtxn_id"]
            lock = self._gtxn_lock(gtxn)
            yield from lock.acquire()
            try:
                outcomes[gtxn] = yield from self._decide_one(
                    gtxn, entry["decision"], entry.get("marker_key")
                )
            finally:
                if lock.locked:
                    try:
                        lock.release()
                    except RuntimeError:
                        pass  # reset by a crash while we held it
        self._reply(message, "finished_group", outcomes=outcomes)

    def _decide_one(
        self, gtxn: Optional[str], decision: str, marker_key: Optional[str]
    ) -> Generator[Any, Any, str]:
        """Apply one global decision; returns the local outcome."""
        txn_id = self._subtxns.get(gtxn or "")
        if txn_id is None:
            # After a crash the manager forgot the subtransaction.  For
            # 2PC an in-doubt transaction may have been reinstated by
            # recovery; find it by its global transaction id.
            recovered = self.interface._engine.find_by_gtxn(gtxn) if gtxn else None
            if recovered is not None and recovered.state is LocalTxnState.READY:
                txn_id = recovered.txn_id
            else:
                return "aborted"
        if decision == "commit":
            status = self.interface.status(txn_id)
            if status is LocalTxnState.COMMITTED:
                # A retried decision after the commit already happened.
                return "committed"
            if status is LocalTxnState.ABORTED:
                self._note_outcome(marker_key, "aborted")
                return "aborted"
            try:
                if marker_key is not None and self.log_placement == "indb":
                    yield from self._write_marker(txn_id, marker_key)
                yield from self.interface.commit(txn_id)
            except TransactionAborted:
                self._note_outcome(marker_key, "aborted")
                return "aborted"
            self._note_outcome(marker_key, "committed")
            return "committed"
        status = self.interface.status(txn_id)
        if status in (LocalTxnState.RUNNING, LocalTxnState.READY):
            yield from self.interface.abort(txn_id)
        self._note_outcome(marker_key, "aborted")
        return "aborted"

    # ------------------------------------------------------------------
    # Commit-before: local commitment before the global decision
    # ------------------------------------------------------------------

    def _on_finish_subtxn(self, message: Message) -> Generator[Any, Any, None]:
        """Commit the local transaction now (per-site commit-before).

        Idempotent: a retried finish (lost reply) answers from the
        transaction's current state instead of re-committing.
        """
        gtxn = message.gtxn_id
        marker_key = message.payload.get("marker_key")
        txn_id = self._subtxns.get(gtxn or "")
        if txn_id is None:
            self._reply(message, "local_outcome", outcome="aborted", reason="forgotten")
            return
        outcome = yield from self._finish_local(txn_id, marker_key)
        self._reply(message, "local_outcome", outcome=outcome)

    def _on_execute_l0(self, message: Message) -> Generator[Any, Any, None]:
        """One L1 action as a complete L0 transaction (multi-level mode).

        Erroneous L0 aborts (deadlock, timeout, validation) are retried
        here -- the action's atomicity is L0's business.  An ``undo``
        flag marks inverse actions (they count as undo executions).
        """
        operation: Operation = message.payload["op"]
        marker_key = message.payload.get("marker_key")
        is_undo = message.payload.get("undo", False)
        # Idempotence guard: a retried request for an action that did
        # commit answers from the marker instead of re-executing.
        marker = yield from self._marker_value(marker_key)
        if marker is not None:
            payload = marker if isinstance(marker, dict) else {}
            if is_undo:
                self.undo_executions += 1
            self._reply(
                message, "l0_done",
                value=payload.get("value"), before=payload.get("before"), retries=0,
            )
            return
        # Fence *after* the marker guard: an action that already
        # committed under the old epoch must keep answering from its
        # marker, or its forward effect would be orphaned.  Only
        # not-yet-executed actions are rejected for re-routing.
        if not is_undo and self._stale_epoch(operation):
            self._reply(message, "l0_failed", aborted=True, reason="stale epoch")
            return
        # Inverse transactions are tagged so the atomicity checker can
        # pair them off against the forward executions they neutralize.
        owner = f"{message.gtxn_id}!undo" if is_undo else message.gtxn_id
        retries = 0
        while True:
            txn_id = self.interface.begin(gtxn_id=owner)
            try:
                value, before = yield from self._apply_op(txn_id, operation)
                if (
                    marker_key is not None
                    and self.log_placement == "indb"
                    and operation.kind != "read"
                ):
                    # The marker row carries the before-image so the
                    # central undo-log can be rebuilt even if this reply
                    # is lost to a crash.
                    yield from self._write_marker(
                        txn_id, marker_key, {"before": before, "value": value}
                    )
                yield from self.interface.commit(txn_id)
                break
            except TransactionAborted:
                retries += 1
                # Randomized backoff: concurrent repetitions contending
                # on the same pages must not retry in lockstep.
                yield self._retry_rng.uniform(1.0, 5.0 * retries)
                if retries > self.max_l0_retries:
                    self._reply(message, "l0_failed", aborted=True, reason="retries exhausted")
                    return
            except DatabaseError as exc:
                yield from self._safe_abort(txn_id)
                self._reply(message, "l0_failed", aborted=False, reason=str(exc))
                return
        self._note_outcome(marker_key, "committed")
        if is_undo:
            self.undo_executions += 1
        self._reply(message, "l0_done", value=value, before=before, retries=retries)

    def _on_undo_subtxn(self, message: Message) -> Generator[Any, Any, None]:
        """Run the inverse transaction for a committed subtransaction.

        The inverse transaction is itself a local transaction; if it is
        (erroneously) aborted it is repeated (§3.3).
        """
        inverse_ops: list[Operation] = message.payload["inverse_ops"]
        marker_key = message.payload.get("marker_key")
        already = yield from self._marker_outcome(marker_key)
        if already == "committed":
            self._reply(message, "undo_result", outcome="undone", retries=0)
            return
        owner = f"{message.gtxn_id}!undo" if message.gtxn_id else None
        retries = 0
        while True:
            txn_id = self.interface.begin(gtxn_id=owner)
            try:
                if marker_key is not None and self.log_placement == "indb":
                    yield from self._write_marker(txn_id, marker_key)
                for operation in inverse_ops:
                    yield from self._apply_op(txn_id, operation)
                yield from self.interface.commit(txn_id)
                break
            except TransactionAborted:
                retries += 1
                # Randomized backoff: concurrent repetitions contending
                # on the same pages must not retry in lockstep.
                yield self._retry_rng.uniform(1.0, 5.0 * retries)
                if retries > self.max_l0_retries:
                    self._reply(message, "undo_result", outcome="failed")
                    return
            except DatabaseError as exc:
                yield from self._safe_abort(txn_id)
                self._reply(message, "undo_result", outcome="failed", reason=str(exc))
                return
        self._note_outcome(marker_key, "committed")
        self.undo_executions += 1
        self._reply(message, "undo_result", outcome="undone", retries=retries)

    # ------------------------------------------------------------------
    # Commit-after: redo of erroneously aborted subtransactions
    # ------------------------------------------------------------------

    def _on_redo_subtxn(self, message: Message) -> Generator[Any, Any, None]:
        """Repeat the whole subtransaction until it commits (§3.2).

        Idempotent: if the durable commit marker shows a previous (redo
        or original) execution already committed, nothing is repeated --
        the guard against the central's retries double-applying.
        """
        operations: list[Operation] = message.payload["ops"]
        marker_key = message.payload.get("marker_key")
        already = yield from self._marker_outcome(marker_key)
        if already == "committed":
            self._reply(message, "redo_result", outcome="committed", retries=0)
            return
        retries = 0
        while True:
            txn_id = self.interface.begin(gtxn_id=message.gtxn_id)
            try:
                for operation in operations:
                    yield from self._apply_op(txn_id, operation)
                if marker_key is not None and self.log_placement == "indb":
                    yield from self._write_marker(txn_id, marker_key)
                yield from self.interface.commit(txn_id)
                if message.gtxn_id:
                    self._subtxns[message.gtxn_id] = txn_id
                break
            except TransactionAborted:
                retries += 1
                # Randomized backoff: concurrent repetitions contending
                # on the same pages must not retry in lockstep.
                yield self._retry_rng.uniform(1.0, 5.0 * retries)
                if retries > self.max_l0_retries:
                    self._reply(message, "redo_result", outcome="failed")
                    return
            except DatabaseError as exc:
                yield from self._safe_abort(txn_id)
                self._reply(message, "redo_result", outcome="failed", reason=str(exc))
                return
        self._note_outcome(marker_key, "committed")
        self.redo_executions += 1
        self._reply(message, "redo_result", outcome="committed", retries=retries)

    # ------------------------------------------------------------------
    # Status queries
    # ------------------------------------------------------------------

    def _on_status_query(self, message: Message) -> Generator[Any, Any, None]:
        """Answer "what happened to this subtransaction?".

        With ``durable=True`` the commit-marker relation inside the
        database is consulted (survives crashes); otherwise only the
        manager's volatile memory -- after a crash the honest answer is
        ``unknown``.
        """
        marker_key = message.payload.get("marker_key")
        durable = message.payload.get("durable", True)
        gtxn = message.gtxn_id
        txn_id = self._subtxns.get(gtxn or "")
        if txn_id is not None:
            status = self.interface.status(txn_id)
            if status is LocalTxnState.COMMITTED:
                self._reply(message, "status_report", outcome="committed")
                return
            if status in (LocalTxnState.RUNNING, LocalTxnState.READY):
                self._reply(message, "status_report", outcome="running")
                return
            if status is LocalTxnState.ABORTED:
                self._reply(message, "status_report", outcome="aborted")
                return
        if durable and self.log_placement == "indb" and marker_key is not None:
            marker = yield from self._read_marker(marker_key)
            if marker is None:
                self._reply(message, "status_report", outcome="aborted")
            elif isinstance(marker, dict):
                self._reply(
                    message,
                    "status_report",
                    outcome="committed",
                    before=marker.get("before"),
                    value=marker.get("value"),
                )
            else:
                self._reply(message, "status_report", outcome="committed")
            return
        outcome = self._outcomes.get(marker_key or "", "unknown")
        self._reply(message, "status_report", outcome=outcome)

    def _on_ping(self, message: Message) -> Generator[Any, Any, None]:
        self._reply(message, "pong")
        return
        yield  # pragma: no cover - generator protocol

    def _on_recover_query(self, message: Message) -> Generator[Any, Any, None]:
        """List the in-doubt globals local recovery reinstated (READY).

        The global recovery manager asks this after a restart; the
        answer drives its protocol-specific re-resolution pass.
        """
        engine = self.interface._engine
        in_doubt = sorted(
            {
                txn.gtxn_id
                for txn in engine._txns.values()
                if txn.gtxn_id and txn.state is LocalTxnState.READY
            }
        )
        self._reply(message, "recover_report", in_doubt=in_doubt)
        return
        yield  # pragma: no cover - generator protocol

    def _on_pre_commit(self, message: Message) -> Generator[Any, Any, None]:
        """3PC pre-commit: force a note that commit is imminent, ack."""
        self._reply(message, "pre_commit_ack")
        return
        yield  # pragma: no cover - generator protocol

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _apply_op(
        self, txn_id: str, operation: Operation
    ) -> Generator[Any, Any, tuple[Any, Any]]:
        """Execute one operation; returns (value, before-image)."""
        interface = self.interface
        table = operation.local_table or operation.table
        value = None
        before = None
        if operation.kind == "read":
            value = yield from interface.read(txn_id, table, operation.key)
        elif operation.kind == "write":
            before = yield from interface.read(txn_id, table, operation.key)
            yield from interface.write(txn_id, table, operation.key, operation.value)
        elif operation.kind == "increment":
            value = yield from interface.increment(
                txn_id, table, operation.key, operation.value
            )
        elif operation.kind == "insert":
            yield from interface.insert(txn_id, table, operation.key, operation.value)
        elif operation.kind == "delete":
            before = yield from interface.read(txn_id, table, operation.key)
            yield from interface.delete(txn_id, table, operation.key)
        else:
            raise DatabaseError(f"unsupported operation {operation.kind!r}")
        return value, before

    def _write_marker(
        self, txn_id: str, marker_key: str, value: Any = "done"
    ) -> Generator[Any, Any, None]:
        """Write the commit marker inside the local transaction itself."""
        yield from self.interface.write(txn_id, COMMITLOG_TABLE, marker_key, value)

    def _marker_outcome(self, marker_key: Optional[str]) -> Generator[Any, Any, Optional[str]]:
        """Best effort: did the transaction behind ``marker_key`` commit?

        Uses the durable marker with in-DB placement, volatile memory
        otherwise (which is precisely what EXP-A2 shows to be unsafe).
        """
        if marker_key is None:
            return None
        if self.log_placement == "indb":
            marker = yield from self._read_marker(marker_key)
            return "committed" if marker is not None else None
        return self._outcomes.get(marker_key)

    def _marker_value(self, marker_key: Optional[str]) -> Generator[Any, Any, Any]:
        """The marker row itself (carries before/value for L0 actions)."""
        if marker_key is None:
            return None
        if self.log_placement == "indb":
            marker = yield from self._read_marker(marker_key)
            return marker
        if self._outcomes.get(marker_key) == "committed":
            return {}
        return None

    def _read_marker(self, marker_key: str) -> Generator[Any, Any, Any]:
        """Read the commit-marker row with a fresh transaction."""
        txn_id = self.interface.begin()
        try:
            value = yield from self.interface.read(txn_id, COMMITLOG_TABLE, marker_key)
            yield from self.interface.commit(txn_id)
        except TransactionAborted:
            return None
        return value

    def _safe_abort(self, txn_id: str) -> Generator[Any, Any, None]:
        status = self.interface.status(txn_id)
        if status in (LocalTxnState.RUNNING, LocalTxnState.READY):
            try:
                yield from self.interface.abort(txn_id)
            except TransactionAborted:
                pass

    def _note_outcome(self, marker_key: Optional[str], outcome: str) -> None:
        if marker_key is not None:
            self._outcomes[marker_key] = outcome

    def __repr__(self) -> str:
        return f"<LocalCommunicationManager {self.site} subtxns={len(self._subtxns)}>"
