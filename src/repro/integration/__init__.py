"""Integration layer: what glues the existing systems to the central one.

* :mod:`repro.integration.schema` -- the global schema mapping global
  tables onto (site, local table) placements.
* :mod:`repro.integration.decompose` -- decomposition of a global
  transaction into local subtransactions (per site).
* :mod:`repro.integration.comm_local` -- the communication manager that
  sits *on top of* each existing database system (paper §2): listens
  for global calls, drives the unchanged local TM interface, packages
  replies.
* :mod:`repro.integration.comm_central` -- its counterpart at the
  central system, with request/reply correlation and timeouts.
* :mod:`repro.integration.federation` -- convenience builder that wires
  a whole federation (kernel, network, sites, GTM) in one call.
"""

from repro.integration.comm_central import CentralCommunicationManager
from repro.integration.comm_local import LocalCommunicationManager
from repro.integration.decompose import decompose
from repro.integration.federation import Federation, FederationConfig, SiteSpec
from repro.integration.schema import GlobalSchema

__all__ = [
    "CentralCommunicationManager",
    "Federation",
    "FederationConfig",
    "GlobalSchema",
    "LocalCommunicationManager",
    "SiteSpec",
    "decompose",
]
