"""The central communication manager.

"The communication manager of the central system is the counterpart of
the local communication managers" (§2).  It offers the GTM a
request/reply API over the star network: ``request`` sends a message to
a site and returns when the correlated reply arrives (or raises
:class:`~repro.errors.MessageTimeout`); ``send`` is fire-and-forget.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.errors import MessageTimeout, NodeUnreachable
from repro.net.message import Message
from repro.sim.events import Future

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.network import Network
    from repro.net.node import Node
    from repro.sim.kernel import Kernel


class CentralCommunicationManager:
    """Request/reply endpoint of the central system."""

    def __init__(self, kernel: "Kernel", network: "Network", node: "Node"):
        self.kernel = kernel
        self.network = network
        self.node = node
        self._pending: dict[int, Future] = {}
        self._serve_process = kernel.spawn(self._serve(), name="central-comm")
        self.requests = 0
        self.timeouts = 0
        # Observers of replies that matched no pending request -- the
        # recovery manager uses them to spot orphaned subtransactions
        # (a site answered after the requester had already moved on).
        self.on_unmatched: list = []

    def _serve(self) -> Generator[Any, Any, None]:
        """Route incoming replies to the futures awaiting them."""
        while True:
            try:
                message = yield from self.node.recv()
            except NodeUnreachable:
                return
            if message.reply_to is not None and message.reply_to in self._pending:
                self._pending.pop(message.reply_to).resolve(message)
            else:
                self.kernel.trace.emit(
                    "message_unmatched", self.node.name, message.kind,
                    sender=message.sender,
                )
                for hook in self.on_unmatched:
                    hook(message)

    def respawn(self) -> None:
        """Restart the serve loop after the node came back.

        The crash failed every pending future and drove :meth:`_serve`
        to its ``NodeUnreachable`` exit; a restarted coordinator needs
        a fresh loop (and a clean pending table -- replies to the old
        incarnation's requests are strangers now and flow to the
        ``on_unmatched`` hooks).
        """
        if not self._serve_process.done:
            return
        self._pending.clear()
        self._serve_process = self.kernel.spawn(self._serve(), name="central-comm")

    # -- API used by the GTM and the protocols --------------------------------

    def send(self, site: str, kind: str, gtxn_id: Optional[str] = None, **payload: Any) -> None:
        """One-way message to ``site``."""
        self.network.send(
            Message(kind=kind, sender=self.node.name, dest=site,
                    payload=payload, gtxn_id=gtxn_id)
        )

    def request(
        self,
        site: str,
        kind: str,
        gtxn_id: Optional[str] = None,
        timeout: Optional[float] = None,
        **payload: Any,
    ) -> Generator[Any, Any, Message]:
        """Send and await the correlated reply.

        Raises :class:`MessageTimeout` when no reply arrives in time
        (lost message, crashed site); the caller decides whether to
        retry, wait for recovery, or abort globally.
        """
        message = Message(
            kind=kind, sender=self.node.name, dest=site,
            payload=payload, gtxn_id=gtxn_id,
        )
        # The label is purely diagnostic; skip the f-string on the hot
        # path when tracing is off.
        if self.kernel.trace.enabled:
            future = Future(label=f"reply:{kind}:{site}")
        else:
            future = Future()
        self._pending[message.msg_id] = future
        self.requests += 1
        self.network.send(message)
        if timeout is None:
            reply = yield future
            return reply
        ok, reply = yield from self.kernel.wait_with_timeout(future, timeout)
        if not ok:
            self._pending.pop(message.msg_id, None)
            self.timeouts += 1
            # Stop the reliable layer from retransmitting a request we
            # gave up on: the caller's retry sends a fresh one, and a
            # late ghost delivery of this one could make the site act
            # on a transaction the coordinator already resolved.
            self.network.abandon(message.msg_id)
            raise MessageTimeout(f"{kind} to {site} (gtxn={gtxn_id})")
        return reply

    def __repr__(self) -> str:
        return f"<CentralCommunicationManager pending={len(self._pending)}>"
