"""Decomposition of global transactions into local subtransactions.

"According to this information [the global schema], a global user
transaction will be decomposed into local transactions" (§2).  The
decomposer routes each operation and groups them per site while
preserving the global execution order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.integration.schema import GlobalSchema
from repro.mlt.actions import Operation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dataplane.manager import DataPlane


@dataclass
class Decomposition:
    """Routed operations, globally ordered and grouped per site."""

    ordered: list[Operation] = field(default_factory=list)
    by_site: dict[str, list[Operation]] = field(default_factory=dict)

    @property
    def sites(self) -> list[str]:
        return list(self.by_site)

    def __len__(self) -> int:
        return len(self.ordered)


def decompose(
    schema: GlobalSchema,
    operations: list[Operation],
    dataplane: Optional["DataPlane"] = None,
) -> Decomposition:
    """Route every operation and group by site (order preserving).

    Tables under a data-plane placement route by namespace instead of
    the static schema: reads bind to the partition's primary, writes
    fan out to the whole replica set -- one routed copy per member, in
    member order -- so every replica participates in the commit
    protocol like any other site.  May raise
    :class:`~repro.dataplane.placement.PlacementUnavailable` while a
    partition is frozen for a rejoin; the GTM retries.
    """
    result = Decomposition()
    for operation in operations:
        if dataplane is not None and dataplane.manages(operation.table):
            for routed in dataplane.routes(operation):
                result.ordered.append(routed)
                result.by_site.setdefault(routed.site, []).append(routed)
            continue
        routed = schema.route(operation)
        result.ordered.append(routed)
        result.by_site.setdefault(routed.site, []).append(routed)
    return result
