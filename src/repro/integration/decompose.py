"""Decomposition of global transactions into local subtransactions.

"According to this information [the global schema], a global user
transaction will be decomposed into local transactions" (§2).  The
decomposer routes each operation and groups them per site while
preserving the global execution order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.integration.schema import GlobalSchema
from repro.mlt.actions import Operation


@dataclass
class Decomposition:
    """Routed operations, globally ordered and grouped per site."""

    ordered: list[Operation] = field(default_factory=list)
    by_site: dict[str, list[Operation]] = field(default_factory=dict)

    @property
    def sites(self) -> list[str]:
        return list(self.by_site)

    def __len__(self) -> int:
        return len(self.ordered)


def decompose(schema: GlobalSchema, operations: list[Operation]) -> Decomposition:
    """Route every operation and group by site (order preserving)."""
    result = Decomposition()
    for operation in operations:
        routed = schema.route(operation)
        result.ordered.append(routed)
        result.by_site.setdefault(routed.site, []).append(routed)
    return result
