"""Federation builder: assemble a whole integrated database system.

One call wires the kernel, the star network, the central node with its
communication manager and GTM, and one local node per
:class:`SiteSpec` -- engine, TM interface (standard or preparable),
local communication manager, crash/restart hooks -- then loads the
initial data.  Examples, tests and benchmarks all start here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from repro.core.gtm import GlobalTransactionManager, GTMConfig
from repro.integration.comm_central import CentralCommunicationManager
from repro.integration.comm_local import LocalCommunicationManager
from repro.integration.schema import GlobalSchema
from repro.localdb.config import LocalDBConfig
from repro.localdb.engine import LocalDatabase
from repro.localdb.interface import PreparableTMInterface, StandardTMInterface
from repro.net.network import FixedLatency, Network, UniformLatency
from repro.net.node import Node
from repro.sim.kernel import Kernel


@dataclass
class SiteSpec:
    """Description of one existing database system to integrate.

    ``tables`` maps local table names to their initial rows.
    ``preparable`` selects the modified TM interface needed by the
    2PC/3PC baselines; the default models the paper's unchangeable
    managers.
    """

    name: str
    tables: dict[str, dict[Any, Any]] = field(default_factory=dict)
    config: Optional[LocalDBConfig] = None
    preparable: bool = False
    buckets: int = 8


@dataclass
class FederationConfig:
    """Federation-wide knobs.

    ``batch_window`` > 0 turns on per-link message batching: logical
    messages bound for the same site within the window share one
    physical envelope (one latency sample, one loss trial).  ``0`` (the
    default) is the seed's unbatched behaviour, message for message.
    """

    seed: int = 0
    latency: float = 1.0
    latency_jitter: float = 0.0
    loss_rate: float = 0.0
    batch_window: float = 0.0
    batch_policy: str = "static"
    batch_max_msgs: int = 0
    dup_rate: float = 0.0
    reorder_rate: float = 0.0
    reorder_spread: float = 5.0
    reliable: bool = False
    retransmit_timeout: float = 15.0
    retransmit_backoff: float = 2.0
    max_retransmits: int = 12
    #: Upper bound on one retransmission delay: the exponential backoff
    #: is capped here so retry schedules stay sane under long
    #: partitions (15 · 2¹¹ ≈ 30k time units otherwise).
    max_retransmit_delay: float = 300.0
    log_placement: str = "indb"  # "indb" | "volatile"
    metrics: bool = False
    spans: bool = False
    #: Number of commit coordinators (the sharded GTM pool); 1 is the
    #: paper's single central GTM.
    coordinators: int = 1
    #: ``"hash"`` (gtxn id) or ``"affinity"`` (first routed site).
    coordinator_routing: str = "hash"
    #: Paxos Commit fault tolerance: the decision survives ``paxos_f``
    #: acceptor crashes (``2 * paxos_f + 1`` acceptors are built).
    #: Only read when ``gtm.protocol == "paxos"``.
    paxos_f: int = 1
    #: Data-plane placement: a list of
    #: :class:`~repro.dataplane.placement.PlacementSpec` declarations.
    #: ``None`` (the default) builds no data plane at all -- routing,
    #: execution and recovery stay byte-identical to the seed.
    placement: Optional[list] = None
    #: How long a crashed partition member keeps its seat before the
    #: data plane evicts it (promoting the next replica if it was the
    #: primary) and bumps the partition epoch.
    lease_timeout: float = 40.0
    gtm: GTMConfig = field(default_factory=GTMConfig)

    def __post_init__(self) -> None:
        # The GTM's ambiguity resolution must match what the local
        # communication managers can actually answer.
        self.gtm.durable_status = self.log_placement == "indb"


class Federation:
    """A running integrated database system."""

    CENTRAL = "central"

    def __init__(self, site_specs: list[SiteSpec], config: Optional[FederationConfig] = None):
        self.config = config or FederationConfig()
        self.kernel = Kernel(seed=self.config.seed)
        latency = (
            UniformLatency(
                max(0.0, self.config.latency - self.config.latency_jitter),
                self.config.latency + self.config.latency_jitter,
            )
            if self.config.latency_jitter
            else FixedLatency(self.config.latency)
        )
        self.network = Network(
            self.kernel,
            latency=latency,
            loss_rate=self.config.loss_rate,
            batch_window=self.config.batch_window,
            batch_policy=self.config.batch_policy,
            batch_max_msgs=self.config.batch_max_msgs,
            dup_rate=self.config.dup_rate,
            reorder_rate=self.config.reorder_rate,
            reorder_spread=self.config.reorder_spread,
            reliable=self.config.reliable,
            retransmit_timeout=self.config.retransmit_timeout,
            retransmit_backoff=self.config.retransmit_backoff,
            max_retransmits=self.config.max_retransmits,
            max_retransmit_delay=self.config.max_retransmit_delay,
        )
        self.schema = GlobalSchema()
        self.engines: dict[str, LocalDatabase] = {}
        self.interfaces: dict[str, StandardTMInterface] = {}
        self.comms: dict[str, LocalCommunicationManager] = {}
        self.nodes: dict[str, Node] = {}

        central = self.network.add_node(Node(self.kernel, self.CENTRAL, is_central=True))
        self.nodes[self.CENTRAL] = central
        self.central_comm = CentralCommunicationManager(self.kernel, self.network, central)
        self.gtm = GlobalTransactionManager(
            self.kernel, self.network, self.schema, self.central_comm, self.config.gtm
        )
        # The coordinator pool.  Shard 0 is the classic "central" GTM
        # above; extra shards (only built when ``coordinators`` > 1, so
        # the default wiring and its event schedule stay the seed's)
        # are peer central nodes sharing shard 0's L1 lock service and
        # central logs -- the shared durable storage that makes
        # failover sound.
        from repro.core.pool import CoordinatorPool

        self.coordinators: list[GlobalTransactionManager] = [self.gtm]
        for index in range(1, max(1, self.config.coordinators)):
            peer_node = self.network.add_node(
                Node(self.kernel, f"central{index}", is_central=True)
            )
            self.nodes[peer_node.name] = peer_node
            peer_comm = CentralCommunicationManager(self.kernel, self.network, peer_node)
            self.coordinators.append(
                GlobalTransactionManager(
                    self.kernel, self.network, self.schema, peer_comm,
                    self.config.gtm, share_from=self.gtm,
                )
            )
        self.pool = CoordinatorPool(
            self.kernel, self.coordinators, routing=self.config.coordinator_routing
        )

        # Paxos coordinator mode: one shared 2F+1 acceptor group; every
        # shard's embedded leader speaks to the same ensemble.  Never
        # built on classic paths -- no extra nodes, no extra events.
        self.acceptors = None
        if self.config.gtm.protocol == "paxos":
            from repro.core.paxos import AcceptorGroup

            self.acceptors = AcceptorGroup(
                self.kernel, self.network, self.config.paxos_f
            )
            for acceptor in self.acceptors.acceptors:
                self.nodes[acceptor.name] = acceptor.node
            for gtm in self.coordinators:
                gtm.acceptors = self.acceptors

        # Per-site end-of-outage time; overlapping crash schedules
        # extend it so stale restarts cannot resurrect a site early.
        self._outage_until: dict[str, float] = {}
        # Sites with a restart-and-recover already in flight: a second
        # restart landing at the same instant must no-op instead of
        # running a second, concurrent recovery pass.
        self._restarting: set[str] = set()

        for spec in site_specs:
            self._add_site(spec)

        # Data-plane placement: only built when configured, so every
        # default federation keeps the seed's exact wiring and event
        # schedule.  The DataPlane is shared -- coordinators consult it
        # at decompose time, sites fence stale epochs with it, and the
        # crash hooks below arm its promotion leases.
        self.dataplane = None
        if self.config.placement:
            from repro.dataplane import DataPlane, PlacementMap

            self.dataplane = DataPlane(
                self,
                PlacementMap(
                    self.config.placement, [spec.name for spec in site_specs]
                ),
                lease_timeout=self.config.lease_timeout,
            )
            for gtm in self.coordinators:
                gtm.dataplane = self.dataplane
            for comm in self.comms.values():
                comm.dataplane = self.dataplane
            for name in self.engines:
                self.nodes[name].on_crash.append(
                    lambda site=name: self.dataplane.on_site_crash(site)
                )

        self._load_initial_data(site_specs)

        # Observability attaches after setup so baselines and the trace
        # mark exclude the initial-load prefix.  With both knobs off
        # (the default) nothing is created and no hook is installed.
        self.obs = None
        if self.config.metrics or self.config.spans:
            from repro.obs.instrument import Observability

            self.obs = Observability(self, spans=self.config.spans)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _add_site(self, spec: SiteSpec) -> None:
        engine = LocalDatabase(self.kernel, spec.name, spec.config)
        interface_cls = PreparableTMInterface if spec.preparable else StandardTMInterface
        interface = interface_cls(engine)
        node = self.network.add_node(Node(self.kernel, spec.name))
        comm = LocalCommunicationManager(
            self.kernel, self.network, node, interface,
            log_placement=self.config.log_placement,
        )
        node.on_crash.append(engine.crash)
        node.on_crash.append(comm.on_crash)
        node.on_restart.append(engine.restart)
        node.on_restart.append(comm.on_restart)
        self.engines[spec.name] = engine
        self.interfaces[spec.name] = interface
        self.comms[spec.name] = comm
        self.nodes[spec.name] = node
        # Default schema: every local table is visible globally under
        # the same name, placed on its site.  Conflicting names must be
        # mapped explicitly by the caller instead.
        for table in spec.tables:
            try:
                self.schema.map_table(table, spec.name, table)
            except Exception:
                pass  # caller maps ambiguous tables explicitly

    def _load_initial_data(self, site_specs: list[SiteSpec]) -> None:
        def loader() -> Generator[Any, Any, None]:
            for spec in site_specs:
                engine = self.engines[spec.name]
                yield from self.comms[spec.name].setup()
                for table, rows in spec.tables.items():
                    yield from engine.create_table(table, spec.buckets)
                    if rows:
                        txn = engine.begin()
                        for key, value in rows.items():
                            yield from engine.insert(txn, table, key, value)
                        yield from engine.commit(txn)
            if self.dataplane is not None:
                # Partition local tables: every member holds exactly
                # the partitions it serves (partial replication), each
                # seeded with that partition's slice of the global rows.
                for partition in self.dataplane.map.partitions:
                    spec = self.dataplane.map.spec_for(partition.table)
                    rows = self.dataplane.map.initial_rows(partition)
                    for member in partition.members:
                        engine = self.engines[member]
                        yield from engine.create_table(
                            partition.local_table, spec.buckets
                        )
                        if rows:
                            txn = engine.begin()
                            for key, value in rows.items():
                                yield from engine.insert(
                                    txn, partition.local_table, key, value
                                )
                            yield from engine.commit(txn)

        process = self.kernel.spawn(loader(), name="federation-setup")
        self.kernel.run()
        if not process.done:
            raise RuntimeError("federation setup did not finish")
        process.value  # re-raise setup errors, if any
        # Give callers a clean t=0: setup time is not part of any run.
        self.kernel._now = 0.0

    # ------------------------------------------------------------------
    # Running work
    # ------------------------------------------------------------------

    def submit(self, operations, name: Optional[str] = None, intends_abort: bool = False):
        """Submit a global transaction; returns its process.

        With ``coordinators`` > 1 the pool routes it to its home shard
        (hash or affinity); with one coordinator this is the seed's
        direct submission.
        """
        return self.pool.submit(operations, name=name, intends_abort=intends_abort)

    def run(self, until: Optional[float] = None) -> float:
        """Advance the simulation."""
        return self.kernel.run(until=until)

    def run_transactions(self, batches: list[dict]) -> list:
        """Submit many global transactions at once and run to completion.

        Each batch dict holds ``operations`` plus optional ``name``,
        ``intends_abort`` and ``delay`` (submission time offset).
        Returns the outcomes in submission order.
        """
        processes = []

        def submitter(batch: dict) -> Generator[Any, Any, Any]:
            if batch.get("delay"):
                yield batch["delay"]
            outcome = yield self.pool.submit(
                batch["operations"],
                name=batch.get("name"),
                intends_abort=batch.get("intends_abort", False),
            )
            return outcome

        for batch in batches:
            processes.append(self.kernel.spawn(submitter(batch), name="submit"))
        self.kernel.run()
        return [p.value for p in processes]

    # ------------------------------------------------------------------
    # Fault control
    # ------------------------------------------------------------------

    def _coordinator_index(self, name: str) -> Optional[int]:
        for index, gtm in enumerate(self.coordinators):
            if gtm.name == name:
                return index
        return None

    def crash_site(self, name: str, at: Optional[float] = None) -> None:
        """Crash ``name`` now or at simulated time ``at``.

        With a sharded pool, crashing a coordinator node by name routes
        through :meth:`crash_coordinator` so failover actually runs.
        """
        if len(self.coordinators) > 1:
            index = self._coordinator_index(name)
            if index is not None:
                self.crash_coordinator(index, at=at)
                return
        if self.acceptors is not None and name in self.acceptors.by_name:
            self.crash_acceptor(self.acceptors.names.index(name), at=at)
            return
        node = self.nodes[name]
        if at is None:
            node.crash()
        else:
            self.kernel.call_at(at, node.crash)

    def hold_down(self, name: str, until: float) -> None:
        """Extend ``name``'s outage: restarts before ``until`` are ignored.

        Overlapping crash schedules extend (never shorten) each other --
        a crash landing inside another outage must not let the earlier
        outage's restart resurrect the site early.
        """
        current = self._outage_until.get(name, 0.0)
        self._outage_until[name] = max(current, until)

    def restart_site(self, name: str, at: Optional[float] = None) -> None:
        """Restart ``name`` now or at simulated time ``at``.

        Idempotent: restarting a running site is a no-op, and a restart
        scheduled before the site's current outage ends (see
        :meth:`hold_down`) is ignored -- the outage that extended the
        downtime carries its own, later restart.
        """
        if len(self.coordinators) > 1:
            index = self._coordinator_index(name)
            if index is not None:
                self.restart_coordinator(index, at=at)
                return
        if self.acceptors is not None and name in self.acceptors.by_name:
            self.restart_acceptor(self.acceptors.names.index(name), at=at)
            return
        node = self.nodes[name]

        def do_restart() -> None:
            if not node.crashed or name in self._restarting:
                return  # already up / already coming up: nothing to do
            if self.kernel.now < self._outage_until.get(name, 0.0):
                return  # a longer overlapping outage owns the restart
            self._restarting.add(name)
            self.kernel.spawn(
                self._restart_and_recover(name), name=f"restart:{name}"
            )

        if at is None:
            do_restart()
        else:
            self.kernel.call_at(at, do_restart)

    def _restart_and_recover(self, name: str) -> Generator[Any, Any, None]:
        """Bring the node back, then re-resolve its in-doubt globals."""
        node = self.nodes[name]
        try:
            yield from node.restart()
        finally:
            self._restarting.discard(name)
        if node.crashed:
            return  # the restart was pre-empted (crashed again mid-recovery)
        if name in self.engines:
            # Recovery duty falls to a live coordinator: shard 0 when
            # it is up (the seed's exact path), else any live peer.
            if not self.gtm.crashed or len(self.coordinators) == 1:
                yield from self.gtm.recovery.recover_site(name)
            else:
                from repro.core.pool import AllCoordinatorsDown

                try:
                    owner = self.pool.live_coordinator()
                except AllCoordinatorsDown:
                    return  # the next coordinator restart re-sweeps
                yield from owner.recovery.recover_site(name)
            # Rejoin evicted partition memberships *after* global
            # recovery settled the site's in-doubt locals: the resync
            # must reconcile settled state, never race a pending
            # decision.
            if self.dataplane is not None and not node.crashed:
                yield from self.dataplane.rejoin(name)

    # ------------------------------------------------------------------
    # Coordinator fault control (sharded pools)
    # ------------------------------------------------------------------

    def crash_coordinator(self, index: int, at: Optional[float] = None) -> None:
        """Crash pool shard ``index`` now or at simulated time ``at``.

        A live peer immediately adopts the crashed shard's in-flight
        transactions and resolves them per protocol from the shared
        central logs.
        """
        if at is None:
            self.pool.crash(index)
        else:
            self.kernel.call_at(at, self.pool.crash, index)

    def restart_coordinator(self, index: int, at: Optional[float] = None) -> None:
        """Restart pool shard ``index`` now or at simulated time ``at``."""

        def do_restart() -> None:
            gtm = self.coordinators[index]
            self.kernel.spawn(
                self.pool.restart(index), name=f"restart:{gtm.name}"
            )

        if at is None:
            do_restart()
        else:
            self.kernel.call_at(at, do_restart)

    # ------------------------------------------------------------------
    # Acceptor fault control (paxos coordinator mode)
    # ------------------------------------------------------------------

    def crash_acceptor(self, index: int, at: Optional[float] = None) -> None:
        """Crash acceptor ``index`` now or at simulated time ``at``.

        Up to ``paxos_f`` simultaneous acceptor crashes leave every
        decision readable and every new decision choosable.
        """
        if self.acceptors is None:
            raise RuntimeError("no acceptor group (protocol is not paxos)")
        if at is None:
            self.acceptors.crash(index)
        else:
            self.kernel.call_at(at, self.acceptors.crash, index)

    def restart_acceptor(self, index: int, at: Optional[float] = None) -> None:
        """Restart acceptor ``index``; its stable state survived."""
        if self.acceptors is None:
            raise RuntimeError("no acceptor group (protocol is not paxos)")

        def do_restart() -> None:
            acceptor = self.acceptors.acceptors[index]
            if not acceptor.node.crashed:
                return
            self.kernel.spawn(
                acceptor.restart(), name=f"restart:{acceptor.name}"
            )

        if at is None:
            do_restart()
        else:
            self.kernel.call_at(at, do_restart)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def peek(self, site: str, table: str, key: Any) -> Any:
        """Non-transactional peek at the current committed-ish value.

        Prefers the buffered page image, falling back to the stable
        disk image; for assertions in tests and experiments only.
        """
        engine = self.engines[site]
        heap = engine.catalog.heap(table)
        page_id = heap.page_of(key)
        if engine.buffer.resident(page_id):
            return engine.buffer._frames[page_id].get(key)
        page = engine.disk.stable_page(page_id)
        return page.get(key) if page is not None else None

    def peek_global(self, table: str, key: Any) -> Any:
        """Peek a *global* object wherever it lives.

        Resolves data-plane placements to the partition primary and
        schema placements to their site, then peeks there.
        """
        if self.dataplane is not None and self.dataplane.manages(table):
            partition = self.dataplane.map.partition_of(table, key)
            return self.peek(partition.primary, partition.local_table, key)
        placement = self.schema.placement(table, key)
        return self.peek(placement.site, placement.local_table, key)

    def histories(self, by_gtxn: bool = True) -> dict[str, list]:
        """Per-site committed histories for the serializability checkers."""
        from repro.core.serializability import ops_from_engine

        return {
            site: ops_from_engine(engine, by_gtxn=by_gtxn)
            for site, engine in self.engines.items()
        }

    def metrics(self) -> dict[str, Any]:
        """Combined metrics of GTM, network and all sites."""
        report = {
            "gtm": self.pool.metrics(),
            "network": {
                "sent": self.network.sent,
                "delivered": self.network.delivered,
                "dropped": self.network.dropped,
                "envelopes": self.network.envelopes,
                "piggybacked": self.network.piggybacked,
                "by_kind": self.network.message_counts(),
                "reliability": self.network.reliability_counts(),
                "duplicate_requests": sum(
                    c.duplicate_requests for c in self.comms.values()
                ),
            },
            "sites": {site: engine.metrics() for site, engine in self.engines.items()},
        }
        if len(self.coordinators) > 1:
            report["coordinators"] = {
                gtm.name: gtm.metrics() for gtm in self.coordinators
            }
        if self.acceptors is not None:
            report["acceptors"] = self.acceptors.metrics()
        if self.dataplane is not None:
            report["dataplane"] = self.dataplane.metrics()
        if self.obs is not None:
            report["obs"] = self.obs.registry.as_dict()
        report["totals"] = {
            "log_forces": sum(e.disk.log_forces for e in self.engines.values()),
            "lock_wait_time": sum(
                e.locks.total_wait_time for e in self.engines.values()
            ),
            "lock_hold_time": sum(
                e.locks.total_hold_time for e in self.engines.values()
            ),
            "local_commits": sum(e.commits for e in self.engines.values()),
            "local_aborts": {
                reason.value: sum(e.aborts[reason] for e in self.engines.values())
                for reason in next(iter(self.engines.values())).aborts
            }
            if self.engines
            else {},
        }
        return report

    def report(self):
        """The §4 cost table for this run (requires ``metrics=True``)."""
        from repro.obs.report import RunReport

        return RunReport.from_federation(self)

    def __repr__(self) -> str:
        return f"<Federation sites={sorted(self.engines)} protocol={self.gtm.config.protocol}>"
