"""Global schema: routing global objects to existing database systems.

The central system stores "all the global data which are needed for the
integration of the existing systems, e.g. information for schema
integration" (§2).  Here that is a mapping from global table names to
placements:

* a *single-site* table lives wholly in one existing database;
* a *partitioned* table spreads its keys over several sites through a
  user-supplied partition function (e.g. accounts by bank).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.errors import ReproError
from repro.mlt.actions import Operation


class SchemaError(ReproError):
    """A global operation could not be routed."""


@dataclass(frozen=True)
class Placement:
    """Where one global object lives."""

    site: str
    local_table: str


class GlobalSchema:
    """Mapping of global tables to local placements."""

    def __init__(self) -> None:
        self._single: dict[str, Placement] = {}
        self._partitioned: dict[str, Callable[[Any], Placement]] = {}

    def map_table(self, global_table: str, site: str, local_table: Optional[str] = None) -> None:
        """Place ``global_table`` wholly on ``site``."""
        self._check_new(global_table)
        self._single[global_table] = Placement(site, local_table or global_table)

    def map_partitioned(
        self, global_table: str, partition: Callable[[Any], Placement]
    ) -> None:
        """Place keys of ``global_table`` via ``partition(key)``."""
        self._check_new(global_table)
        self._partitioned[global_table] = partition

    def _check_new(self, global_table: str) -> None:
        if global_table in self._single or global_table in self._partitioned:
            raise SchemaError(f"table {global_table!r} already mapped")

    def placement(self, global_table: str, key: Any) -> Placement:
        """Resolve the placement of one global object."""
        if global_table in self._single:
            return self._single[global_table]
        if global_table in self._partitioned:
            placement = self._partitioned[global_table](key)
            if not isinstance(placement, Placement):
                raise SchemaError(
                    f"partition function of {global_table!r} returned {placement!r}"
                )
            return placement
        raise SchemaError(f"no mapping for global table {global_table!r}")

    def route(self, operation: Operation) -> Operation:
        """Bind an operation to its site and local table."""
        placement = self.placement(operation.table, operation.key)
        return operation.routed(placement.site, placement.local_table)

    def tables(self) -> list[str]:
        return sorted([*self._single, *self._partitioned])

    def __repr__(self) -> str:
        return f"<GlobalSchema tables={self.tables()}>"
