"""Deterministic chaos harness (EXP-R1).

One :func:`run_chaos` call builds a federation with reliable delivery
turned on, subjects it to a seeded randomized fault schedule -- message
loss, duplication, reordering, link partitions, crash/recover cycles
and (for commit-after) erroneous local aborts -- while a batch of
cross-site transfer transactions runs, then silences every fault source
at ``fault_horizon`` and lets the system run on a clean network until
``resolution_horizon``.

The workload is conservation-checking by construction: every
transaction moves value between accounts with balancing increments, so
a committed-or-fully-undone history leaves the global total untouched.
The result reports the three correctness obligations the paper's §3
machinery must uphold under any such schedule:

* a clean :func:`~repro.core.invariants.atomicity_report`;
* a serializable committed history;
* **convergence** -- every global transaction reached a terminal state
  at every site within the post-fault horizon (no stuck coordinators,
  no forgotten in-doubt locals, no lingering redo/undo obligations).

Everything is driven from named kernel RNG streams: the same
(protocol, seed) pair replays the identical schedule, which is what
makes a chaos failure debuggable from its kernel trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator

from repro.core.gtm import GTMConfig
from repro.core.invariants import (
    atomicity_report,
    replica_convergence_violations,
    serializability_ok,
)
from repro.core.protocols import (
    chaos_matrix_protocols,
    preparable_protocols,
    redo_window_protocols,
)
from repro.faults.injector import FaultInjector
from repro.integration.federation import Federation, FederationConfig, SiteSpec
from repro.mlt.actions import increment

#: The protocol matrix every chaos seed is swept across, derived from
#: the protocol registry (every ``in_chaos`` protocol, sorted by name).
CHAOS_PROTOCOLS: list[tuple[str, str]] = chaos_matrix_protocols()

#: Initial balance of every account; the invariant is that the global
#: total never drifts from ``n_sites * keys_per_site * INITIAL_BALANCE``.
INITIAL_BALANCE = 1000


@dataclass
class ChaosSpec:
    """One seeded chaos schedule for one protocol configuration."""

    protocol: str
    granularity: str = "per_site"
    seed: int = 0
    n_sites: int = 3
    n_txns: int = 12
    keys_per_site: int = 4
    #: Transactions are submitted uniformly over ``[0, submit_spread]``.
    submit_spread: float = 150.0
    #: Faults are injected only before this time ...
    fault_horizon: float = 400.0
    #: ... and everything must be terminal by this one.
    resolution_horizon: float = 4000.0
    loss_rate: float = 0.05
    dup_rate: float = 0.05
    reorder_rate: float = 0.1
    crash_rate: float = 0.004
    outage: float = 60.0
    partition_count: int = 2
    partition_duration: float = 40.0
    erroneous_abort_rate: float = 0.2
    msg_timeout: float = 25.0
    intended_abort_every: int = 4
    #: Attach the observability registry to the run; the injector's
    #: fault counters then share it with the rest of the federation.
    metrics: bool = False
    #: Coordinator pool width; 1 is the classic single central GTM.
    coordinators: int = 1
    #: With ``coordinators`` > 1: crash this shard at this time (0 =
    #: no coordinator crash) and restart it after this outage (0 = the
    #: shard stays down; its peers carry the rest of the run).
    coordinator_crash_index: int = 1
    coordinator_crash_at: float = 0.0
    coordinator_outage: float = 0.0
    #: Paxos Commit only: acceptor-group fault tolerance (2F+1 built)
    #: and a scheduled kill of the first ``acceptor_crashes`` acceptors
    #: at ``acceptor_crash_at`` (0 = none), restarted after
    #: ``acceptor_outage`` (0 = they stay down -- which up to F crashes
    #: must tolerate without a single blocked transaction).
    paxos_f: int = 1
    acceptor_crashes: int = 0
    acceptor_crash_at: float = 0.0
    acceptor_outage: float = 0.0
    #: Data-plane sharding: > 0 replaces the per-site tables with one
    #: partitioned global table (``acct``) placed across the sites,
    #: each partition carrying ``replication`` members.
    partitions: int = 0
    replication: int = 1
    #: Scheduled data-site crashes: kill the primaries of the first
    #: ``site_crashes`` distinct partitions at ``site_crash_at`` (0 =
    #: none), restarting each after ``replica_outage`` (0 = stays down).
    site_crashes: int = 0
    site_crash_at: float = 0.0
    replica_outage: float = 60.0
    #: Replica-set lease: promotion fires this long after a crash.
    lease_timeout: float = 40.0
    #: Per-link message batching under chaos (0 = seed path).  The
    #: adaptive policy plus crashes exercises the outbox purge and the
    #: reliable-path retransmission of batched envelopes.
    batch_window: float = 0.0
    batch_policy: str = "static"
    batch_max_msgs: int = 0


@dataclass
class ChaosResult:
    """Outcome and audit of one chaos run."""

    spec: ChaosSpec
    committed: int = 0
    aborted: int = 0
    end_time: float = 0.0
    atomicity_ok: bool = False
    violations: list = field(default_factory=list)
    serializable: bool = False
    converged: bool = True
    stuck: list[str] = field(default_factory=list)
    conserved: bool = False
    total_balance: int = 0
    expected_balance: int = 0
    #: Partitioned runs only: serving replicas hold identical images.
    replicas_converged: bool = True
    replica_violations: list = field(default_factory=list)
    #: Time from the fault silence to the last transaction finishing
    #: (0 when everything already resolved during the fault phase).
    time_to_resolution: float = 0.0
    counters: dict[str, Any] = field(default_factory=dict)
    #: The metrics registry the fault counters live on (the
    #: federation's with ``spec.metrics``, the injector's own without).
    registry: Any = field(default=None, repr=False)
    #: The live federation, kept for post-mortem trace dumps in tests.
    federation: Any = field(default=None, repr=False)

    @property
    def ok(self) -> bool:
        return (
            self.atomicity_ok
            and self.serializable
            and self.converged
            and self.conserved
            and self.replicas_converged
        )


def _chaos_keys(spec: ChaosSpec) -> int:
    """Total account keys of a partitioned chaos run."""
    return spec.n_sites * spec.keys_per_site


def build_chaos_federation(spec: ChaosSpec) -> Federation:
    """A federation wired for one chaos run (reliable delivery on)."""
    needs_prepare = spec.protocol in preparable_protocols()
    placement = None
    if spec.partitions > 0:
        # One partitioned global table replaces the per-site tables; the
        # same money, now placed (and possibly replicated) by namespace.
        from repro.dataplane import PlacementSpec

        site_specs = [
            SiteSpec(f"s{i}", preparable=needs_prepare)
            for i in range(spec.n_sites)
        ]
        placement = [
            PlacementSpec(
                table="acct",
                partitions=spec.partitions,
                replication=spec.replication,
                rows={
                    f"k{j}": INITIAL_BALANCE for j in range(_chaos_keys(spec))
                },
            )
        ]
    else:
        site_specs = [
            SiteSpec(
                f"s{i}",
                tables={
                    f"t{i}": {
                        f"k{j}": INITIAL_BALANCE for j in range(spec.keys_per_site)
                    }
                },
                preparable=needs_prepare,
            )
            for i in range(spec.n_sites)
        ]
    config = FederationConfig(
        seed=spec.seed,
        latency=1.0,
        loss_rate=spec.loss_rate,
        dup_rate=spec.dup_rate,
        reorder_rate=spec.reorder_rate,
        reliable=True,
        retransmit_timeout=6.0,
        batch_window=spec.batch_window,
        batch_policy=spec.batch_policy,
        batch_max_msgs=spec.batch_max_msgs,
        metrics=spec.metrics,
        coordinators=spec.coordinators,
        paxos_f=spec.paxos_f,
        placement=placement,
        lease_timeout=spec.lease_timeout,
        gtm=GTMConfig(
            protocol=spec.protocol,
            granularity=spec.granularity,
            msg_timeout=spec.msg_timeout,
            status_poll_interval=8.0,
        ),
    )
    return Federation(site_specs, config)


def run_chaos(spec: ChaosSpec) -> ChaosResult:
    """Execute one seeded chaos schedule and audit the aftermath."""
    fed = build_chaos_federation(spec)
    kernel = fed.kernel
    injector = FaultInjector(fed)
    rng = kernel.rng.stream("chaos")
    sites = [f"s{i}" for i in range(spec.n_sites)]

    # -- fault schedule (all pre-sampled: independent of interleaving) --
    if spec.protocol in redo_window_protocols() and spec.erroneous_abort_rate:
        # Both §3.2-style protocols (commit-after and one-phase) leave
        # locals running past their vote, so an autonomous abort in the
        # window must be redone -- the fault that exercises that path.
        injector.erroneous_aborts_after_ready(
            probability=spec.erroneous_abort_rate, delay=0.3
        )
    injector.random_crashes(
        sites,
        horizon=spec.fault_horizon,
        crash_rate=spec.crash_rate,
        outage=spec.outage,
    )
    for _ in range(spec.partition_count):
        victim = sites[int(rng.uniform(0, len(sites))) % len(sites)]
        injector.partition_link(
            "central", victim,
            at=rng.uniform(0.0, spec.fault_horizon),
            heal_after=spec.partition_duration,
        )

    def clear_faults() -> None:
        fed.network.loss_rate = 0.0
        fed.network.dup_rate = 0.0
        fed.network.reorder_rate = 0.0
        fed.network.heal()
        kernel.trace.emit("chaos", "harness", "faults_cleared")

    kernel.call_at(spec.fault_horizon, clear_faults)

    # -- scheduled coordinator crash (sharded pools) -------------------
    if spec.coordinators > 1 and spec.coordinator_crash_at > 0:
        fed.crash_coordinator(
            spec.coordinator_crash_index, at=spec.coordinator_crash_at
        )
        if spec.coordinator_outage > 0:
            fed.restart_coordinator(
                spec.coordinator_crash_index,
                at=spec.coordinator_crash_at + spec.coordinator_outage,
            )

    # -- scheduled acceptor crashes (paxos coordinator mode) -----------
    if spec.acceptor_crashes > 0 and spec.acceptor_crash_at > 0:
        if fed.acceptors is None:
            raise ValueError("acceptor_crashes requires protocol='paxos'")
        for i in range(spec.acceptor_crashes):
            fed.crash_acceptor(i, at=spec.acceptor_crash_at)
            if spec.acceptor_outage > 0:
                fed.restart_acceptor(
                    i, at=spec.acceptor_crash_at + spec.acceptor_outage
                )

    # -- scheduled data-site crashes (partitioned data plane) ----------
    if spec.partitions > 0 and spec.site_crashes > 0 and spec.site_crash_at > 0:
        victims: list[str] = []
        for partition in fed.dataplane.map.partitions:
            if partition.primary not in victims:
                victims.append(partition.primary)
            if len(victims) >= spec.site_crashes:
                break
        for victim in victims:
            fed.crash_site(victim, at=spec.site_crash_at)
            if spec.replica_outage > 0:
                fed.restart_site(
                    victim, at=spec.site_crash_at + spec.replica_outage
                )

    # -- conservation workload: balanced cross-site transfers ----------
    def transfer_ops(txn_rng) -> list:
        if spec.partitions > 0:
            total = _chaos_keys(spec)
            src_key = int(txn_rng.uniform(0, total)) % total
            hop = 1 + int(txn_rng.uniform(0, total - 1)) % (total - 1)
            amount = 1 + int(txn_rng.uniform(0, 9))
            dst_key = (src_key + hop) % total
            return [
                increment("acct", f"k{src_key}", -amount),
                increment("acct", f"k{dst_key}", amount),
            ]
        src = int(txn_rng.uniform(0, spec.n_sites)) % spec.n_sites
        hop = int(txn_rng.uniform(0, spec.n_sites)) % max(1, spec.n_sites - 1)
        dst = (src + 1 + hop) % spec.n_sites
        amount = 1 + int(txn_rng.uniform(0, 9))
        src_key = f"k{int(txn_rng.uniform(0, spec.keys_per_site)) % spec.keys_per_site}"
        dst_key = f"k{int(txn_rng.uniform(0, spec.keys_per_site)) % spec.keys_per_site}"
        return [
            increment(f"t{src}", src_key, -amount),
            increment(f"t{dst}", dst_key, amount),
        ]

    def submitter(index: int, delay: float) -> Generator[Any, Any, Any]:
        yield delay
        intends_abort = (
            spec.intended_abort_every > 0
            and index % spec.intended_abort_every == spec.intended_abort_every - 1
        )
        outcome = yield fed.submit(
            transfer_ops(rng), name=f"C{index}", intends_abort=intends_abort
        )
        return outcome

    processes = [
        kernel.spawn(
            submitter(i, rng.uniform(0.0, spec.submit_spread)), name=f"chaos-submit:{i}"
        )
        for i in range(spec.n_txns)
    ]

    end_time = fed.run(until=spec.resolution_horizon)

    # -- audit ----------------------------------------------------------
    result = ChaosResult(spec=spec, end_time=end_time)
    result.committed = sum(gtm.committed for gtm in fed.coordinators)
    result.aborted = sum(gtm.aborted for gtm in fed.coordinators)
    report = atomicity_report(fed)
    result.atomicity_ok = report.ok
    result.violations = list(report.violations)
    result.serializable = serializability_ok(fed)

    for process in processes:
        if not process.done:
            result.converged = False
            result.stuck.append(f"submitter {process.name} unfinished")
    for gtm in fed.coordinators:
        if gtm.active:
            result.converged = False
            result.stuck.extend(
                f"gtxn {gtxn_id} still active at {gtm.name}"
                for gtxn_id in sorted(gtm.active)
            )
    orphans = fed.pool.unresolved_orphans()
    if orphans:
        result.converged = False
        result.stuck.extend(
            f"gtxn {gtxn_id} orphaned in-doubt (no failover resolved it)"
            for gtxn_id in orphans
        )
    for site, engine in fed.engines.items():
        for txn in engine.active_txns():
            if txn.gtxn_id:
                result.converged = False
                result.stuck.append(
                    f"{site}: local {txn.txn_id} of {txn.gtxn_id} non-terminal"
                )

    result.expected_balance = (
        spec.n_sites * spec.keys_per_site * INITIAL_BALANCE
    )
    if spec.partitions > 0:
        result.total_balance = sum(
            fed.peek_global("acct", f"k{j}") or 0
            for j in range(_chaos_keys(spec))
        )
        violations = replica_convergence_violations(fed)
        result.replicas_converged = not violations
        result.replica_violations = [str(v) for v in violations]
    else:
        result.total_balance = sum(
            fed.peek(f"s{i}", f"t{i}", f"k{j}") or 0
            for i in range(spec.n_sites)
            for j in range(spec.keys_per_site)
        )
    result.conserved = result.total_balance == result.expected_balance

    finish_times = [
        outcome.finish_time
        for gtm in fed.coordinators
        for outcome in gtm.outcomes
        if outcome.finish_time is not None
    ]
    last_finish = max(finish_times) if finish_times else 0.0
    result.time_to_resolution = max(0.0, last_finish - spec.fault_horizon)

    result.counters = {
        **fed.network.reliability_counts(),
        **injector.counters(),
        "duplicate_requests": sum(
            comm.duplicate_requests for comm in fed.comms.values()
        ),
        "recovery_passes": sum(g.recovery.passes for g in fed.coordinators),
        "recovery_resolved_indoubt": sum(
            g.recovery.resolved_indoubt for g in fed.coordinators
        ),
        "recovery_redriven_redos": sum(
            g.recovery.redriven_redos for g in fed.coordinators
        ),
        "recovery_redriven_undos": sum(
            g.recovery.redriven_undos for g in fed.coordinators
        ),
        "recovery_orphans_terminated": sum(
            g.recovery.orphans_terminated for g in fed.coordinators
        ),
        "coordinator_crashes": fed.pool.crashes,
        "takeovers_started": fed.pool.takeovers_started,
        "paxos_concluded": sum(
            g.recovery.paxos_concluded for g in fed.coordinators
        ),
        "failovers": sum(g.recovery.failovers for g in fed.coordinators),
        "failover_resolved": sum(
            g.recovery.failover_resolved for g in fed.coordinators
        ),
    }
    if fed.dataplane is not None:
        dp = fed.dataplane
        result.counters.update(
            dataplane_promotions=dp.promotions,
            dataplane_evictions=dp.evictions,
            dataplane_rejoins=dp.rejoins,
            dataplane_resynced_keys=dp.resynced_keys,
            dataplane_stale_rejections=dp.stale_rejections,
            dataplane_unavailable_rejections=dp.unavailable_rejections,
        )
    result.registry = injector.registry
    result.federation = fed
    return result


def chaos_matrix(
    seeds: list[int],
    protocols: list[tuple[str, str]] | None = None,
    **overrides: Any,
) -> list[ChaosResult]:
    """Sweep ``seeds`` across the protocol matrix; returns all results."""
    results = []
    for protocol, granularity in protocols or CHAOS_PROTOCOLS:
        for seed in seeds:
            spec = ChaosSpec(
                protocol=protocol, granularity=granularity, seed=seed, **overrides
            )
            results.append(run_chaos(spec))
    return results
