"""Fault injection: the sources of *erroneous* local aborts and crashes."""

from repro.faults.injector import FaultInjector

__all__ = ["FaultInjector"]
