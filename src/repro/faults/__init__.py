"""Fault injection: the sources of *erroneous* local aborts and crashes."""

from repro.faults.chaos import (
    CHAOS_PROTOCOLS,
    ChaosResult,
    ChaosSpec,
    chaos_matrix,
    run_chaos,
)
from repro.faults.injector import FaultInjector

__all__ = [
    "CHAOS_PROTOCOLS",
    "ChaosResult",
    "ChaosSpec",
    "FaultInjector",
    "chaos_matrix",
    "run_chaos",
]
