"""Fault injection.

Models the paper's failure sources:

* **Erroneous local aborts after the ready answer** (§3.2): "the
  transaction may still be aborted by the local transaction manager,
  e.g. because of time out, by an optimistic scheduler ..., or by a
  system crash."  :meth:`FaultInjector.erroneous_aborts_after_ready`
  hooks the exact window -- after a communication manager voted ready,
  before the decision lands -- and kills the still-running local
  transaction with probability ``p``.
* **Site crashes** at chosen or random times, with recovery after a
  configurable outage.
* **Direct system aborts** of a running subtransaction.

All randomness comes from named kernel streams, so fault schedules are
reproducible.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.localdb.txn import LocalAbortReason
from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.integration.federation import Federation


class FaultInjector:
    """Deterministic fault source bound to one federation.

    Injected-fault counts live on a metrics registry -- the
    federation's own when observability is enabled, a private one
    otherwise -- so chaos runs and instrumented runs report through
    the same machinery.  The ``injected_*`` attribute API is kept as
    read-only properties.
    """

    def __init__(self, federation: "Federation", stream: str = "faults"):
        self.federation = federation
        self.kernel = federation.kernel
        self._rng = self.kernel.rng.stream(stream)
        obs = getattr(federation, "obs", None)
        self.registry = obs.registry if obs is not None else MetricsRegistry()
        protocol = federation.config.gtm.protocol
        self._aborts = self.registry.counter("injected_aborts", protocol=protocol)
        self._crashes = self.registry.counter("injected_crashes", protocol=protocol)
        self._partitions = self.registry.counter(
            "injected_partitions", protocol=protocol
        )

    @property
    def injected_aborts(self) -> int:
        return int(self._aborts.value)

    @property
    def injected_crashes(self) -> int:
        return int(self._crashes.value)

    @property
    def injected_partitions(self) -> int:
        return int(self._partitions.value)

    # ------------------------------------------------------------------
    # Erroneous aborts in the §3.2 window
    # ------------------------------------------------------------------

    def erroneous_aborts_after_ready(
        self,
        probability: float,
        sites: Optional[list[str]] = None,
        delay: float = 0.5,
    ) -> None:
        """Abort ready-voted locals with ``probability``.

        Only meaningful for the §3.2-window protocols (commit-after and
        one-phase), whose locals wait for the decision in the *running*
        state; a prepared local in the READY state is immune (its
        scheduler may no longer abort it), which this injector respects
        by skipping every preparable protocol's vote.
        """
        from repro.core.protocols import preparable_protocols

        immune = preparable_protocols()
        targets = sites or list(self.federation.engines)

        def make_hook(site: str):
            engine = self.federation.engines[site]

            def hook(gtxn_id: str, txn_id: str, protocol: str) -> None:
                if protocol in immune:
                    return
                if self._rng.random() >= probability:
                    return

                def fire() -> None:
                    self._aborts.inc()
                    self.kernel.trace.emit(
                        "fault", site, txn_id, kind="system_abort", gtxn=gtxn_id
                    )
                    engine.force_abort(txn_id, LocalAbortReason.SYSTEM)

                self.kernel._schedule(delay, fire)

            return hook

        for site in targets:
            self.federation.comms[site].on_ready_voted.append(make_hook(site))

    # ------------------------------------------------------------------
    # Direct aborts and crashes
    # ------------------------------------------------------------------

    def abort_subtxn(self, site: str, txn_id: str, at: Optional[float] = None) -> None:
        """Force-abort one local transaction (a "system abort")."""
        engine = self.federation.engines[site]

        def fire() -> None:
            self._aborts.inc()
            self.kernel.trace.emit("fault", site, txn_id, kind="system_abort")
            engine.force_abort(txn_id, LocalAbortReason.SYSTEM)

        if at is None:
            fire()
        else:
            self.kernel.call_at(at, fire)

    def lose_next_message(self, kind: str) -> None:
        """Drop the next message of ``kind`` (e.g. a ``finished`` reply).

        This is the §3.2 propagation hazard in its purest form: the
        local commit happened, but the redo mechanism never learns it.
        """
        self.federation.network.drop_once.add(kind)

    def crash_site(self, site: str, at: float, recover_after: Optional[float] = None) -> None:
        """Crash ``site`` at ``at``; restart after ``recover_after`` if set.

        Overlap-safe: a crash landing inside another outage only
        extends the downtime (:meth:`Federation.hold_down`) -- it is not
        counted as a fresh crash, and the earlier outage's restart
        cannot resurrect the site before the extended outage ends.
        """

        def fire() -> None:
            node = self.federation.nodes[site]
            if recover_after is not None:
                self.federation.hold_down(site, self.kernel.now + recover_after)
            if node.crashed:
                return  # already down: the outage was merely extended
            self._crashes.inc()
            self.kernel.trace.emit("fault", site, site, kind="crash")
            node.crash()

        self.kernel.call_at(at, fire)
        if recover_after is not None:
            self.federation.restart_site(site, at=at + recover_after)

    def partition_link(
        self, a: str, b: str, at: float, heal_after: Optional[float] = None
    ) -> None:
        """Cut the ``a``--``b`` link at ``at``; heal ``heal_after`` later."""

        def fire() -> None:
            self._partitions.inc()
            self.kernel.trace.emit("fault", a, b, kind="partition")
            self.federation.network.partition(a, b)

        self.kernel.call_at(at, fire)
        if heal_after is not None:
            self.kernel.call_at(
                at + heal_after, self.federation.network.heal, a, b
            )

    def counters(self) -> dict[str, int]:
        """Injected-fault accounting for the per-bench JSON reports."""
        return {
            "injected_aborts": self.injected_aborts,
            "injected_crashes": self.injected_crashes,
            "injected_partitions": self.injected_partitions,
        }

    def random_crashes(
        self,
        sites: list[str],
        horizon: float,
        crash_rate: float,
        outage: float,
    ) -> None:
        """Schedule Poisson-ish crash/recover cycles until ``horizon``.

        Each site crashes with exponential inter-arrival ``1/crash_rate``
        and recovers ``outage`` later.  Crash times are pre-sampled so
        the schedule is independent of execution interleaving.  A zero
        rate schedules nothing (the fault-level-0 baseline).
        """
        if crash_rate <= 0.0:
            return
        for site in sites:
            t = self._rng.expovariate(crash_rate)
            while t < horizon:
                self.crash_site(site, at=t, recover_after=outage)
                t += outage + self._rng.expovariate(crash_rate)

    def __repr__(self) -> str:
        return (
            f"<FaultInjector aborts={self.injected_aborts} "
            f"crashes={self.injected_crashes}>"
        )
